package sqlparse

import (
	"hash/fnv"
	"sort"
	"strings"
)

// Features summarizes the logical structure of a statement. The Clusterer
// uses these both for the semantic-equivalence heuristic (§4: two templates
// are equivalent if they access the same tables, use the same predicates,
// and return the same projections) and for the logical-feature baseline
// evaluated in §7.7.
type Features struct {
	Type        StatementType
	Tables      []string // sorted, lower-case
	Columns     []string // sorted, lower-case, possibly table-qualified
	Predicates  []string // sorted canonical predicate strings (constants stripped)
	Projections []string // sorted canonical projection strings
	NumJoins    int
	NumGroupBy  int
	NumHaving   int
	NumOrderBy  int
	NumAggs     int // COUNT/SUM/AVG/MIN/MAX calls
}

var aggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// ExtractFeatures walks the statement and gathers its logical features. The
// statement should already be templatized so predicate strings carry
// placeholders rather than constants.
func ExtractFeatures(stmt Statement) Features {
	f := Features{Type: stmt.Type()}
	tables := map[string]bool{}
	columns := map[string]bool{}

	collect := func(e Expr) Expr {
		switch x := e.(type) {
		case *ColumnRef:
			//lint:ignore bounded per-call map scoped to one statement's AST; it dies when ExtractFeatures returns
			columns[strings.ToLower(qualified(x))] = true
		case *FuncCall:
			if aggFuncs[x.Name] {
				f.NumAggs++
			}
		}
		return nil
	}

	switch s := stmt.(type) {
	case *SelectStmt:
		for _, t := range s.From {
			tables[strings.ToLower(t.Name)] = true
		}
		for _, j := range s.Joins {
			tables[strings.ToLower(j.Table.Name)] = true
		}
		f.NumJoins = len(s.Joins)
		if len(s.From) > 1 {
			f.NumJoins += len(s.From) - 1 // implicit joins in the FROM list
		}
		f.NumGroupBy = len(s.GroupBy)
		if s.Having != nil {
			f.NumHaving = 1
		}
		f.NumOrderBy = len(s.OrderBy)
		for _, it := range s.Items {
			f.Projections = append(f.Projections, ExprSQL(it.Expr))
		}
		if s.Where != nil {
			f.Predicates = flattenPredicates(s.Where)
		}
		for _, j := range s.Joins {
			f.Predicates = append(f.Predicates, flattenPredicates(j.On)...)
		}
	case *InsertStmt:
		tables[strings.ToLower(s.Table.Name)] = true
		for _, c := range s.Columns {
			columns[strings.ToLower(c)] = true
		}
		// An INSERT "projects" the column list it writes.
		for _, c := range s.Columns {
			f.Projections = append(f.Projections, strings.ToLower(c))
		}
	case *UpdateStmt:
		tables[strings.ToLower(s.Table.Name)] = true
		for _, a := range s.Set {
			columns[strings.ToLower(a.Column)] = true
			f.Projections = append(f.Projections, strings.ToLower(a.Column))
		}
		if s.Where != nil {
			f.Predicates = flattenPredicates(s.Where)
		}
	case *DeleteStmt:
		tables[strings.ToLower(s.Table.Name)] = true
		if s.Where != nil {
			f.Predicates = flattenPredicates(s.Where)
		}
	}

	WalkExprs(stmt, collect)

	f.Tables = sortedKeys(tables)
	f.Columns = sortedKeys(columns)
	sort.Strings(f.Predicates)
	sort.Strings(f.Projections)
	return f
}

func qualified(c *ColumnRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// flattenPredicates splits a WHERE tree on AND into its conjunct strings so
// predicate sets compare independently of conjunct order.
func flattenPredicates(e Expr) []string {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(flattenPredicates(b.Left), flattenPredicates(b.Right)...)
	}
	return []string{ExprSQL(e)}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SemanticKey returns the equivalence key used to fold templates that access
// the same tables, use the same predicates, and return the same projections
// (§4). Templates with equal keys are treated as one.
func (f Features) SemanticKey() string {
	var sb strings.Builder
	sb.WriteString(f.Type.String())
	sb.WriteString("|T:")
	sb.WriteString(strings.Join(f.Tables, ","))
	sb.WriteString("|P:")
	sb.WriteString(strings.Join(f.Predicates, ","))
	sb.WriteString("|R:")
	sb.WriteString(strings.Join(f.Projections, ","))
	return sb.String()
}

// LogicalVectorDim is the dimensionality of the logical feature vector used
// by the §7.7 baseline: 4 type slots + 8 table hash buckets + 16 column hash
// buckets + 4 clause counters + 1 aggregate counter.
const LogicalVectorDim = 4 + 8 + 16 + 4 + 1

// LogicalVector encodes the features as a fixed-length vector for L2
// clustering, mirroring the AUTO-LOGICAL baseline: query type, tables,
// columns referenced, clause counts, and aggregation count.
func (f Features) LogicalVector() []float64 {
	v := make([]float64, LogicalVectorDim)
	v[int(f.Type)] = 1
	for _, t := range f.Tables {
		v[4+hashBucket(t, 8)] = 1
	}
	for _, c := range f.Columns {
		v[12+hashBucket(c, 16)] = 1
	}
	v[28] = float64(f.NumJoins)
	v[29] = float64(f.NumGroupBy)
	v[30] = float64(f.NumHaving)
	v[31] = float64(f.NumOrderBy)
	v[32] = float64(f.NumAggs)
	return v
}

func hashBucket(s string, buckets int) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int(h.Sum32() % uint32(buckets))
}
