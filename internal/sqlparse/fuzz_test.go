package sqlparse

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// genExpr builds a random expression tree of bounded depth whose canonical
// rendering must survive a parse → render round trip.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Literal{Kind: "number", Text: fmt.Sprint(rng.Intn(1000))}
		case 1:
			return &Literal{Kind: "string", Text: randWord(rng)}
		case 2:
			return &ColumnRef{Column: "c" + randWord(rng)}
		default:
			return &ColumnRef{Table: "t" + randWord(rng), Column: "c" + randWord(rng)}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return &BinaryExpr{Op: pick(rng, "AND", "OR"), Left: genPredicate(rng, depth-1), Right: genPredicate(rng, depth-1)}
	case 1:
		return genPredicate(rng, depth-1)
	case 2:
		return &NotExpr{Inner: genPredicate(rng, depth-1)}
	case 3:
		return &InExpr{
			Left:    &ColumnRef{Column: "c" + randWord(rng)},
			Items:   []Expr{genExpr(rng, 0), genExpr(rng, 0)},
			Negated: rng.Intn(2) == 0,
		}
	case 4:
		return &BetweenExpr{
			Left: &ColumnRef{Column: "c" + randWord(rng)},
			Lo:   &Literal{Kind: "number", Text: fmt.Sprint(rng.Intn(10))},
			Hi:   &Literal{Kind: "number", Text: fmt.Sprint(10 + rng.Intn(10))},
		}
	case 5:
		return &IsNullExpr{Left: &ColumnRef{Column: "c" + randWord(rng)}, Negated: rng.Intn(2) == 0}
	case 6:
		return &FuncCall{Name: pick(rng, "COUNT", "SUM", "MAX"), Args: []Expr{&ColumnRef{Column: "c" + randWord(rng)}}}
	default:
		return &BinaryExpr{Op: pick(rng, "+", "-", "*"), Left: genExpr(rng, 0), Right: genExpr(rng, 0)}
	}
}

// genPredicate builds something boolean-valued.
func genPredicate(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(2) == 0 {
		return &BinaryExpr{
			Op:    pick(rng, "=", "<", ">", "<=", ">=", "!="),
			Left:  &ColumnRef{Column: "c" + randWord(rng)},
			Right: genExpr(rng, 0),
		}
	}
	return &BinaryExpr{Op: pick(rng, "AND", "OR"), Left: genPredicate(rng, depth-1), Right: genPredicate(rng, depth-1)}
}

func randWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(6)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + rng.Intn(26)))
	}
	return sb.String()
}

func pick(rng *rand.Rand, options ...string) string {
	return options[rng.Intn(len(options))]
}

// TestRandomExpressionRoundTrip renders random WHERE expressions and checks
// the parser reproduces the identical canonical form — a structural fuzz of
// the whole lexer/parser/renderer stack.
func TestRandomExpressionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		where := genPredicate(rng, 3)
		sql := "SELECT x FROM t WHERE " + ExprSQL(where)
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, sql, err)
		}
		if got := stmt.SQL(); got != sql {
			t.Fatalf("trial %d:\n in  %q\n out %q", trial, sql, got)
		}
	}
}

// TestRandomSelectRoundTrip fuzzes full statements.
func TestRandomSelectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		s := &SelectStmt{
			Items: []SelectItem{{Expr: genExpr(rng, 1)}},
			From:  []TableRef{{Name: "t" + randWord(rng)}},
		}
		if rng.Intn(2) == 0 {
			s.Where = genPredicate(rng, 2)
		}
		if rng.Intn(3) == 0 {
			s.OrderBy = []OrderItem{{Expr: &ColumnRef{Column: "c" + randWord(rng)}, Desc: rng.Intn(2) == 0}}
		}
		if rng.Intn(3) == 0 {
			s.Limit = &Literal{Kind: "number", Text: fmt.Sprint(1 + rng.Intn(100))}
		}
		sql := s.SQL()
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, sql, err)
		}
		if got := stmt.SQL(); got != sql {
			t.Fatalf("trial %d:\n in  %q\n out %q", trial, sql, got)
		}
	}
}

// TestRandomTemplatizeStability: templatizing a random statement twice (the
// second time from its own canonical form) yields the same semantic key.
func TestRandomTemplatizeStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		s := &SelectStmt{
			Items: []SelectItem{{Expr: &ColumnRef{Column: "c" + randWord(rng)}}},
			From:  []TableRef{{Name: "t" + randWord(rng)}},
			Where: genPredicate(rng, 2),
		}
		sql := s.SQL()
		first, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		k1 := ExtractFeatures(first).SemanticKey()
		second, err := Parse(first.SQL())
		if err != nil {
			t.Fatal(err)
		}
		k2 := ExtractFeatures(second).SemanticKey()
		if k1 != k2 {
			t.Fatalf("semantic key unstable:\n%q\n%q", k1, k2)
		}
	}
}
