// This file lives in the external sqlparse_test package (not sqlparse) so it
// can import internal/preprocess for the fingerprint-cache equivalence
// invariant without an import cycle; the CI fuzz smoke's `-fuzz FuzzParse`
// must match exactly one target, so the cache check rides inside FuzzParse
// rather than being a second Fuzz function.
package sqlparse_test

import (
	"bytes"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"qb5000/internal/preprocess"
	"qb5000/internal/sqlparse"
)

// fuzzSeeds lists the template shapes the paper's traces exercise (§4):
// IN-lists, quoted strings with escapes, comments, prepared-statement
// parameters, joins, and the update/delete/insert families. The same seeds
// back the checked-in corpus under testdata/fuzz/FuzzParse.
var fuzzSeeds = []string{
	"SELECT a, b FROM t WHERE x = 1",
	"SELECT * FROM orders WHERE id IN (1, 2, 3) AND status = 'open'",
	"SELECT name FROM users WHERE note = 'it''s quoted' OR note = 'x'",
	"SELECT a FROM t -- trailing comment\nWHERE x = 2",
	"SELECT a FROM t /* block\ncomment */ WHERE x = 3",
	"SELECT c FROM t WHERE id = $1 AND ts < $2",
	"SELECT c FROM t WHERE id = ? AND v BETWEEN ? AND ?",
	"SELECT o.id, c.name FROM orders o JOIN customers c ON o.cid = c.id WHERE o.total > 100 ORDER BY o.id LIMIT 10",
	"SELECT COUNT(*) FROM t GROUP BY region HAVING COUNT(*) > 5",
	"SELECT a FROM t WHERE x IS NOT NULL AND NOT (y = 1 OR z IN ('a', 'b'))",
	"INSERT INTO t (a, b, c) VALUES (1, 'two', $3)",
	"UPDATE accounts SET balance = balance - 10 WHERE id = $1",
	"DELETE FROM sessions WHERE expires < ?",
	"select   A ,B from T where X=1",
	"SELECT a FROM t WHERE s LIKE 'pre%'",
	// MOOC workload-evolution shapes (§7.1): the templates the semester
	// phase shift introduces, exercising multi-column inserts, join+group,
	// descending order with limit, counting joins, and LIKE search.
	"INSERT INTO content (course_id, unit, title, body, rev2) VALUES (101, 3, 'unit', 'body', 7)",
	"SELECT e.user_id, COUNT(*) FROM enrollments e JOIN submissions s ON e.user_id = s.user_id WHERE e.course_id = 101 AND e.cohort = 4 GROUP BY e.user_id",
	"SELECT t.id, t.title, t.replies FROM threads t WHERE t.course_id = 101 ORDER BY t.updated_at DESC LIMIT 25",
	"SELECT COUNT(*) FROM posts p JOIN threads t ON p.thread_id = t.id WHERE t.course_id = 101 AND p.created_at > 1525132800",
	"SELECT t.id, t.title FROM threads t WHERE t.course_id = 101 AND t.title LIKE 'q7'",
	// Shapes chosen to stress the fingerprint-cache equivalence check:
	// batched INSERT (batch size rides in the cache entry), string escapes
	// (parameter rendering must match re-parsing), and a zero-parameter
	// statement (nil vals on the hit path).
	"INSERT INTO points (x, y) VALUES (1, 2), (3, 4), (5, 6)",
	"UPDATE notes SET body = 'it''s done\\now' WHERE id = 9",
	"SELECT a, b FROM t",
}

// FuzzParse drives the parser with arbitrary byte strings and checks the
// normalization invariants the Pre-Processor depends on: rendering a parsed
// statement must be a fixed point of Parse∘SQL, the semantic key must be
// stable across that round trip (otherwise identical queries would fold into
// different templates), and ingesting through the fingerprint cache must
// leave the catalog byte-identical to ingesting without it — including under
// eviction churn in both the cache and the catalog.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := sqlparse.Parse(input)
		if err != nil || stmt == nil {
			return // rejecting malformed input is fine; crashing is not
		}
		canon := stmt.SQL()
		if !utf8.ValidString(canon) && utf8.ValidString(input) {
			t.Fatalf("canonical form is not valid UTF-8: %q -> %q", input, canon)
		}
		stmt2, err := sqlparse.Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %q -> %q: %v", input, canon, err)
		}
		canon2 := stmt2.SQL()
		if canon2 != canon {
			t.Fatalf("canonical form is not a fixed point:\n input: %q\n pass1: %q\n pass2: %q", input, canon, canon2)
		}
		k1 := sqlparse.ExtractFeatures(stmt).SemanticKey()
		k2 := sqlparse.ExtractFeatures(stmt2).SemanticKey()
		if k1 != k2 {
			t.Fatalf("semantic key unstable across round trip:\n input: %q\n key1: %q\n key2: %q", input, k1, k2)
		}
		if strings.TrimSpace(canon) == "" {
			t.Fatalf("parsed statement rendered empty: %q", input)
		}
		checkCacheEquivalence(t, input)
	})
}

// checkCacheEquivalence replays one deterministic observation sequence built
// around the fuzz input into two single-stripe catalogs — fingerprint cache
// disabled vs. a deliberately tiny (2-entry) cache — and requires
// byte-identical snapshots. The sequence repeats the input (cache hits),
// interleaves other templates (clock-hand eviction churn in the 2-entry
// cache), and runs a Maintain that evicts every template mid-sequence (so a
// stale cache entry must re-templatize, not resurrect its dead ID).
func checkCacheEquivalence(t *testing.T, input string) {
	mk := func(cacheSize int) *preprocess.Preprocessor {
		return preprocess.New(preprocess.Options{
			Seed:                 1,
			Shards:               1,
			EvictAfter:           time.Hour,
			FingerprintCacheSize: cacheSize,
		})
	}
	plain, cached := mk(0), mk(2)

	t0 := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	seq := []string{input, fuzzSeeds[0], input, fuzzSeeds[1], fuzzSeeds[2], input}
	feed := func(base time.Time) {
		for i, q := range seq {
			at := base.Add(time.Duration(i) * time.Second)
			_, errP := plain.ProcessBatch(q, at, 1)
			_, errC := cached.ProcessBatch(q, at, 1)
			if (errP == nil) != (errC == nil) {
				t.Fatalf("cache changed accept/reject for %q: plain=%v cached=%v", q, errP, errC)
			}
		}
	}
	feed(t0)
	// Evict everything: EvictAfter is 1h and the jump is 2 days, so every
	// template dies and every cache entry goes stale.
	plain.Maintain(t0.Add(48 * time.Hour))
	cached.Maintain(t0.Add(48 * time.Hour))
	// Re-feed after the purge: the cached side must re-templatize (fresh
	// IDs), not fold into evicted templates.
	feed(t0.Add(48 * time.Hour))

	var bp, bc bytes.Buffer
	if err := plain.Snapshot(&bp); err != nil {
		t.Fatalf("plain snapshot: %v", err)
	}
	if err := cached.Snapshot(&bc); err != nil {
		t.Fatalf("cached snapshot: %v", err)
	}
	if !bytes.Equal(bp.Bytes(), bc.Bytes()) {
		t.Fatalf("fingerprint cache changed catalog state for input %q:\nplain %d bytes, cached %d bytes", input, bp.Len(), bc.Len())
	}
}
