package sqlparse

import (
	"fmt"
	"strings"
	"sync"
)

// parseScratch recycles the token buffer (and the parser frame pointing into
// it) across Parse calls. Tokens reference substrings of the immutable input
// or interned keyword strings, and the AST copies nothing but those strings,
// so nothing retains the buffer past the Parse call that filled it.
type parseScratch struct {
	toks []Token
	p    parser
}

var scratchPool = sync.Pool{
	New: func() any { return &parseScratch{toks: make([]Token, 0, 64)} },
}

// Parse parses a single SQL statement. The lexer runs into a pooled token
// buffer, so steady-state parsing of typical statements allocates only the
// AST nodes themselves.
func Parse(input string) (Statement, error) {
	sc := scratchPool.Get().(*parseScratch)
	defer func() {
		sc.p = parser{}
		scratchPool.Put(sc)
	}()
	toks, err := lexInto(sc.toks[:0], input)
	sc.toks = toks // keep any growth for the next caller
	if err != nil {
		return nil, err
	}
	sc.p = parser{toks: toks}
	p := &sc.p
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().Kind == TokSemicolon {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected trailing token %q", p.peek().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }
func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *parser) expect(kind TokenKind, what string) (Token, error) {
	if t := p.peek(); t.Kind == kind {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %s, found %q", what, p.peek().Text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected statement keyword, found %q", t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	default:
		return nil, p.errf("unsupported statement %q", t.Text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		s.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		for {
			join, ok, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			s.Joins = append(s.Joins, join)
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// Bare `*` projection.
	if t := p.peek(); t.Kind == TokOperator && t.Text == "*" {
		p.next()
		return SelectItem{Expr: &ColumnRef{Column: "*"}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t, err := p.expect(TokIdent, "alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		// Implicit alias.
		p.next()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: t.Text}
	if p.acceptKeyword("AS") {
		a, err := p.expect(TokIdent, "table alias")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		p.next()
		ref.Alias = t.Text
	}
	return ref, nil
}

// parseJoin parses one join clause if present.
func (p *parser) parseJoin() (Join, bool, error) {
	kind := ""
	switch {
	case p.acceptKeyword("INNER"):
		kind = "INNER"
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		kind = "LEFT"
	case p.acceptKeyword("RIGHT"):
		p.acceptKeyword("OUTER")
		kind = "RIGHT"
	case p.peek().Kind == TokKeyword && p.peek().Text == "JOIN":
		kind = "INNER"
	default:
		return Join{}, false, nil
	}
	if err := p.expectKeyword("JOIN"); err != nil {
		return Join{}, false, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return Join{}, false, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return Join{}, false, err
	}
	on, err := p.parseExpr()
	if err != nil {
		return Join{}, false, err
	}
	return Join{Kind: kind, Table: ref, On: on}, true, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: TableRef{Name: t.Text}}
	if p.peek().Kind == TokLParen {
		p.next()
		for {
			c, err := p.expect(TokIdent, "column name")
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, c.Text)
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokLParen, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if p.peek().Kind == TokComma {
			p.next()
			continue
		}
		break
	}
	return s, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: TableRef{Name: t.Text}}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(TokIdent, "column name")
		if err != nil {
			return nil, err
		}
		op, err := p.expect(TokOperator, "=")
		if err != nil || op.Text != "=" {
			return nil, p.errf("expected = in SET clause")
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Set = append(s.Set, Assignment{Column: c.Text, Value: v})
		if p.peek().Kind == TokComma {
			p.next()
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: TableRef{Name: t.Text}}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

// Expression grammar (precedence climbing):
//   expr    := andExpr (OR andExpr)*
//   andExpr := notExpr (AND notExpr)*
//   notExpr := NOT notExpr | predicate
//   predicate := additive ((cmp additive) | IN (...) | BETWEEN a AND b |
//                IS [NOT] NULL | [NOT] LIKE additive)?
//   additive := multiplicative ((+|-) multiplicative)*
//   multiplicative := primary ((*|/|%) primary)*

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	negated := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "NOT" {
		// Lookahead for NOT IN / NOT BETWEEN / NOT LIKE.
		if p.pos+1 < len(p.toks) {
			nt := p.toks[p.pos+1]
			if nt.Kind == TokKeyword && (nt.Text == "IN" || nt.Text == "BETWEEN" || nt.Text == "LIKE") {
				p.next()
				negated = true
			}
		}
	}
	t := p.peek()
	switch {
	case t.Kind == TokOperator && isComparison(t.Text):
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		op := t.Text
		if op == "<>" {
			op = "!="
		}
		return &BinaryExpr{Op: op, Left: left, Right: right}, nil
	case t.Kind == TokKeyword && t.Text == "LIKE":
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := Expr(&BinaryExpr{Op: "LIKE", Left: left, Right: right})
		if negated {
			e = &NotExpr{Inner: e}
		}
		return e, nil
	case t.Kind == TokKeyword && t.Text == "IN":
		p.next()
		if _, err := p.expect(TokLParen, "("); err != nil {
			return nil, err
		}
		in := &InExpr{Left: left, Negated: negated}
		for {
			item, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.Items = append(in.Items, item)
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return in, nil
	case t.Kind == TokKeyword && t.Text == "BETWEEN":
		p.next()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Left: left, Lo: lo, Hi: hi, Negated: negated}, nil
	case t.Kind == TokKeyword && t.Text == "IS":
		p.next()
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Left: left, Negated: neg}, nil
	}
	if negated {
		return nil, p.errf("dangling NOT")
	}
	return left, nil
}

func isComparison(op string) bool {
	switch op {
	case "=", "<", ">", "<=", ">=", "!=", "<>":
		return true
	}
	return false
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOperator || (t.Text != "+" && t.Text != "-") {
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOperator || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return left, nil
		}
		p.next()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		// Unify numeric spelling (e.g. 1e3) by keeping the source text;
		// consumers treat numbers opaquely.
		return &Literal{Kind: "number", Text: t.Text}, nil
	case TokString:
		p.next()
		return &Literal{Kind: "string", Text: t.Text}, nil
	case TokPlaceholder:
		p.next()
		return &Placeholder{Text: t.Text}, nil
	case TokOperator:
		if t.Text == "-" || t.Text == "+" {
			p.next()
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			if lit, ok := inner.(*Literal); ok && lit.Kind == "number" && t.Text == "-" {
				return &Literal{Kind: "number", Text: "-" + lit.Text}, nil
			}
			if t.Text == "-" {
				return &BinaryExpr{Op: "-", Left: &Literal{Kind: "number", Text: "0"}, Right: inner}, nil
			}
			return inner, nil
		}
		return nil, p.errf("unexpected operator %q", t.Text)
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Kind: "null", Text: "NULL"}, nil
		case "TRUE":
			p.next()
			return &Literal{Kind: "bool", Text: "TRUE"}, nil
		case "FALSE":
			p.next()
			return &Literal{Kind: "bool", Text: "FALSE"}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		// Only arithmetic needs an explicit grouping node to preserve
		// precedence in the rendered SQL; logical and comparison structure
		// is already encoded by the AST (AND/OR self-parenthesize), and
		// keeping redundant parens would make canonicalization
		// non-idempotent.
		if b, ok := inner.(*BinaryExpr); ok {
			switch b.Op {
			case "+", "-", "*", "/", "%":
				return &ParenExpr{Inner: inner}, nil
			}
		}
		return inner, nil
	case TokIdent:
		p.next()
		// Function call?
		if p.peek().Kind == TokLParen {
			return p.parseFuncCall(t.Text)
		}
		// Qualified column?
		if p.peek().Kind == TokDot {
			p.next()
			nt := p.peek()
			if nt.Kind == TokOperator && nt.Text == "*" {
				p.next()
				return &ColumnRef{Table: t.Text, Column: "*"}, nil
			}
			col, err := p.expect(TokIdent, "column name")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col.Text}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	}
	return nil, p.errf("unexpected token %q", t.Text)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: strings.ToUpper(name)}
	if p.acceptKeyword("DISTINCT") {
		f.Distinct = true
	}
	if t := p.peek(); t.Kind == TokOperator && t.Text == "*" {
		p.next()
		f.Star = true
	} else if p.peek().Kind != TokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, arg)
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	return f, nil
}
