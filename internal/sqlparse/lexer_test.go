package sqlparse

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasic(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE x = 1")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokKeyword, TokIdent, TokComma, TokIdent, TokKeyword,
		TokIdent, TokKeyword, TokIdent, TokOperator, TokNumber, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: kind %v, want %v (%v)", i, got[i], want[i], toks[i])
		}
	}
}

func TestLexKeywordsUppercased(t *testing.T) {
	toks, err := Lex("select FrOm")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "SELECT" || toks[1].Text != "FROM" {
		t.Fatalf("keywords not normalized: %v", toks)
	}
}

func TestLexStrings(t *testing.T) {
	cases := []struct{ in, want string }{
		{"'hello'", "hello"},
		{"'it''s'", "it's"},
		{`'a\'b'`, "a'b"},
		{"''", ""},
	}
	for _, c := range cases {
		toks, err := Lex(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if toks[0].Kind != TokString || toks[0].Text != c.want {
			t.Fatalf("%q → %v, want %q", c.in, toks[0], c.want)
		}
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Fatal("expected unterminated string error")
	}
}

func TestLexNumbers(t *testing.T) {
	for _, in := range []string{"42", "3.14", ".5", "1e9", "2.5E-3"} {
		toks, err := Lex(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != in {
			t.Fatalf("%q → %v", in, toks[0])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("<= >= <> != < > = + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<=", ">=", "<>", "!=", "<", ">", "=", "+", "-", "*", "/", "%"}
	for i, w := range want {
		if toks[i].Kind != TokOperator || toks[i].Text != w {
			t.Fatalf("op %d: %v, want %q", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT 1 -- trailing comment\n/* block */ FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	if len(texts) != 4 { // SELECT 1 FROM t
		t.Fatalf("comments not skipped: %v", texts)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Fatal("expected unterminated comment error")
	}
}

func TestLexPlaceholders(t *testing.T) {
	toks, err := Lex("? $1 $23")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"?", "$1", "$23"} {
		if toks[i].Kind != TokPlaceholder || toks[i].Text != want {
			t.Fatalf("placeholder %d: %v", i, toks[i])
		}
	}
}

func TestLexQuotedIdentifiers(t *testing.T) {
	toks, err := Lex("\"My Table\" `col`")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "My Table" {
		t.Fatalf("quoted ident: %v", toks[0])
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "col" {
		t.Fatalf("backquoted ident: %v", toks[1])
	}
}

func TestLexErrors(t *testing.T) {
	for _, in := range []string{"@", "!x", "#"} {
		if _, err := Lex(in); err == nil {
			t.Fatalf("%q: expected lex error", in)
		}
	}
}
