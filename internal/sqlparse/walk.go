package sqlparse

// Visitor receives every expression node in a statement. Returning a non-nil
// expression replaces the node in place, which is how the Pre-Processor
// swaps literals for placeholders.
type Visitor func(e Expr) Expr

// WalkExprs visits every expression in the statement in a deterministic
// order, applying v and installing any replacements it returns.
func WalkExprs(stmt Statement, v Visitor) {
	switch s := stmt.(type) {
	case *SelectStmt:
		for i := range s.Items {
			s.Items[i].Expr = walkExpr(s.Items[i].Expr, v)
		}
		for i := range s.Joins {
			s.Joins[i].On = walkExpr(s.Joins[i].On, v)
		}
		if s.Where != nil {
			s.Where = walkExpr(s.Where, v)
		}
		for i := range s.GroupBy {
			s.GroupBy[i] = walkExpr(s.GroupBy[i], v)
		}
		if s.Having != nil {
			s.Having = walkExpr(s.Having, v)
		}
		for i := range s.OrderBy {
			s.OrderBy[i].Expr = walkExpr(s.OrderBy[i].Expr, v)
		}
		if s.Limit != nil {
			s.Limit = walkExpr(s.Limit, v)
		}
		if s.Offset != nil {
			s.Offset = walkExpr(s.Offset, v)
		}
	case *InsertStmt:
		for i := range s.Rows {
			for j := range s.Rows[i] {
				s.Rows[i][j] = walkExpr(s.Rows[i][j], v)
			}
		}
	case *UpdateStmt:
		for i := range s.Set {
			s.Set[i].Value = walkExpr(s.Set[i].Value, v)
		}
		if s.Where != nil {
			s.Where = walkExpr(s.Where, v)
		}
	case *DeleteStmt:
		if s.Where != nil {
			s.Where = walkExpr(s.Where, v)
		}
	}
}

func walkExpr(e Expr, v Visitor) Expr {
	switch x := e.(type) {
	case *BinaryExpr:
		x.Left = walkExpr(x.Left, v)
		x.Right = walkExpr(x.Right, v)
	case *NotExpr:
		x.Inner = walkExpr(x.Inner, v)
	case *InExpr:
		x.Left = walkExpr(x.Left, v)
		for i := range x.Items {
			x.Items[i] = walkExpr(x.Items[i], v)
		}
	case *BetweenExpr:
		x.Left = walkExpr(x.Left, v)
		x.Lo = walkExpr(x.Lo, v)
		x.Hi = walkExpr(x.Hi, v)
	case *IsNullExpr:
		x.Left = walkExpr(x.Left, v)
	case *FuncCall:
		for i := range x.Args {
			x.Args[i] = walkExpr(x.Args[i], v)
		}
	case *ParenExpr:
		x.Inner = walkExpr(x.Inner, v)
	}
	if r := v(e); r != nil {
		return r
	}
	return e
}
