package sqlparse

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestExtractFeaturesSelect(t *testing.T) {
	stmt := mustParse(t,
		"SELECT r.id, COUNT(*) FROM routes r JOIN route_stops rs ON r.id = rs.route_id WHERE rs.stop_id = 7 GROUP BY r.id HAVING COUNT(*) > 2 ORDER BY r.id")
	f := ExtractFeatures(stmt)
	if !reflect.DeepEqual(f.Tables, []string{"route_stops", "routes"}) {
		t.Fatalf("Tables = %v", f.Tables)
	}
	if f.NumJoins != 1 || f.NumGroupBy != 1 || f.NumHaving != 1 || f.NumOrderBy != 1 {
		t.Fatalf("clause counts: %+v", f)
	}
	if f.NumAggs < 1 {
		t.Fatalf("aggregates not counted: %+v", f)
	}
	found := false
	for _, p := range f.Predicates {
		if p == "rs.stop_id = 7" {
			found = true
		}
	}
	if !found {
		t.Fatalf("predicates = %v", f.Predicates)
	}
}

func TestExtractFeaturesImplicitJoin(t *testing.T) {
	f := ExtractFeatures(mustParse(t, "SELECT a FROM t1, t2 WHERE t1.id = t2.id"))
	if f.NumJoins != 1 {
		t.Fatalf("implicit join not counted: %+v", f)
	}
}

func TestExtractFeaturesDML(t *testing.T) {
	ins := ExtractFeatures(mustParse(t, "INSERT INTO docs (a, b) VALUES (1, 2)"))
	if !reflect.DeepEqual(ins.Tables, []string{"docs"}) || len(ins.Projections) != 2 {
		t.Fatalf("insert features: %+v", ins)
	}
	upd := ExtractFeatures(mustParse(t, "UPDATE t SET a = 1 WHERE id = 2"))
	if len(upd.Predicates) != 1 || upd.Projections[0] != "a" {
		t.Fatalf("update features: %+v", upd)
	}
	del := ExtractFeatures(mustParse(t, "DELETE FROM t WHERE id = 2"))
	if len(del.Predicates) != 1 {
		t.Fatalf("delete features: %+v", del)
	}
}

// TestSemanticKeyEquivalence checks the §4 heuristic: same tables, same
// predicates, same projections → same key, even when constants differ
// after templatization.
func TestSemanticKeyEquivalence(t *testing.T) {
	templatize := func(sql string) string {
		stmt := mustParse(t, sql)
		WalkExprs(stmt, func(e Expr) Expr {
			if _, ok := e.(*Literal); ok {
				return &Placeholder{}
			}
			return nil
		})
		return ExtractFeatures(stmt).SemanticKey()
	}
	a := templatize("SELECT a, b FROM t WHERE x = 1")
	b := templatize("select B, A from T where X = 999")
	if a != b {
		t.Fatalf("equivalent queries got different keys:\n%s\n%s", a, b)
	}
	c := templatize("SELECT a, b, c FROM t WHERE x = 1")
	if a == c {
		t.Fatal("different projections must differ")
	}
	d := templatize("SELECT a, b FROM t WHERE y = 1")
	if a == d {
		t.Fatal("different predicates must differ")
	}
	e := templatize("SELECT a, b FROM u WHERE x = 1")
	if a == e {
		t.Fatal("different tables must differ")
	}
}

func TestLogicalVector(t *testing.T) {
	f := ExtractFeatures(mustParse(t, "SELECT a FROM t WHERE x = 1"))
	v := f.LogicalVector()
	if len(v) != LogicalVectorDim {
		t.Fatalf("dim = %d, want %d", len(v), LogicalVectorDim)
	}
	if v[int(StmtSelect)] != 1 {
		t.Fatal("type slot not set")
	}
	g := ExtractFeatures(mustParse(t, "DELETE FROM t WHERE x = 1"))
	w := g.LogicalVector()
	if reflect.DeepEqual(v, w) {
		t.Fatal("different statement types should differ")
	}
}

func TestExprSQLNested(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE (x = 1 OR y = 2) AND z IN (3)")
	sel := stmt.(*SelectStmt)
	got := ExprSQL(sel.Where)
	want := "((x = 1 OR y = 2) AND z IN (3))"
	if got != want {
		t.Fatalf("ExprSQL = %q, want %q", got, want)
	}
}
