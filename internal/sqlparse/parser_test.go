package sqlparse

import (
	"fmt"
	"strings"
	"testing"
)

// roundTrips maps raw SQL to its expected canonical rendering.
var roundTrips = []struct{ in, want string }{
	{
		"select a,b from t",
		"SELECT a, b FROM t",
	},
	{
		"SELECT * FROM users WHERE id = 42",
		"SELECT * FROM users WHERE id = 42",
	},
	{
		"select  DISTINCT  U.Name  from  Users  U  where  u.age >= 21",
		"SELECT DISTINCT u.name FROM users AS u WHERE u.age >= 21",
	},
	{
		"SELECT COUNT(*) FROM t GROUP BY x HAVING COUNT(*) > 5",
		"SELECT COUNT(*) FROM t GROUP BY x HAVING COUNT(*) > 5",
	},
	{
		"SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10 OFFSET 5",
		"SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5",
	},
	{
		"SELECT r.id FROM routes r JOIN route_stops rs ON r.id = rs.route_id WHERE rs.stop_id = 3",
		"SELECT r.id FROM routes AS r INNER JOIN route_stops AS rs ON r.id = rs.route_id WHERE rs.stop_id = 3",
	},
	{
		"SELECT a FROM t LEFT OUTER JOIN u ON t.id = u.tid",
		"SELECT a FROM t LEFT JOIN u ON t.id = u.tid",
	},
	{
		"SELECT a FROM t WHERE x IN (1, 2, 3) AND y BETWEEN 4 AND 5",
		"SELECT a FROM t WHERE (x IN (1, 2, 3) AND y BETWEEN 4 AND 5)",
	},
	{
		"SELECT a FROM t WHERE name LIKE 'foo%' OR note IS NOT NULL",
		"SELECT a FROM t WHERE (name LIKE 'foo%' OR note IS NOT NULL)",
	},
	{
		"SELECT a FROM t WHERE NOT x = 1",
		"SELECT a FROM t WHERE NOT (x = 1)",
	},
	{
		"SELECT a + b * 2 FROM t",
		"SELECT a + b * 2 FROM t",
	},
	{
		"SELECT (a + b) / 2 AS half FROM t",
		"SELECT (a + b) / 2 AS half FROM t",
	},
	{
		"insert into t (a, b) values (1, 'x')",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
	},
	{
		"INSERT INTO t VALUES (1), (2), (3)",
		"INSERT INTO t VALUES (1), (2), (3)",
	},
	{
		"update T set A = 1, B = B + 1 where id = 9",
		"UPDATE t SET a = 1, b = b + 1 WHERE id = 9",
	},
	{
		"delete from logs where ts < 100",
		"DELETE FROM logs WHERE ts < 100",
	},
	{
		"SELECT a FROM t WHERE x = -5",
		"SELECT a FROM t WHERE x = -5",
	},
	{
		"SELECT SUM(DISTINCT amount) FROM orders",
		"SELECT SUM(DISTINCT amount) FROM orders",
	},
	{
		"SELECT a FROM t WHERE b <> 3;",
		"SELECT a FROM t WHERE b != 3",
	},
	{
		"SELECT t.* FROM t",
		"SELECT t.* FROM t",
	},
	{
		"SELECT a FROM t WHERE flag = TRUE AND other = FALSE AND thing = NULL",
		"SELECT a FROM t WHERE ((flag = TRUE AND other = FALSE) AND thing = NULL)",
	},
	{
		"SELECT a FROM t WHERE x NOT IN (1, 2)",
		"SELECT a FROM t WHERE x NOT IN (1, 2)",
	},
	{
		"SELECT a FROM t WHERE x NOT BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE x NOT BETWEEN 1 AND 2",
	},
	{
		"SELECT a FROM t WHERE x NOT LIKE 'a%'",
		"SELECT a FROM t WHERE NOT (x LIKE 'a%')",
	},
	{
		"SELECT a FROM t1, t2 WHERE t1.id = t2.id",
		"SELECT a FROM t1, t2 WHERE t1.id = t2.id",
	},
	{
		"SELECT eta FROM p WHERE stop = ? AND route = $2",
		"SELECT eta FROM p WHERE (stop = ? AND route = ?)",
	},
}

func TestParseRoundTrip(t *testing.T) {
	for _, c := range roundTrips {
		stmt, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := stmt.SQL(); got != c.want {
			t.Errorf("Parse(%q).SQL()\n got  %q\n want %q", c.in, got, c.want)
		}
	}
}

// TestCanonicalIdempotent: parsing canonical output reproduces it exactly.
func TestCanonicalIdempotent(t *testing.T) {
	for _, c := range roundTrips {
		stmt, err := Parse(c.in)
		if err != nil {
			continue
		}
		first := stmt.SQL()
		again, err := Parse(first)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", first, err)
			continue
		}
		if second := again.SQL(); second != first {
			t.Errorf("canonical form unstable:\n first  %q\n second %q", first, second)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"INSERT t VALUES (1)",
		"INSERT INTO t VALUES",
		"UPDATE t SET",
		"UPDATE t SET a 1",
		"DELETE t",
		"SELECT a FROM t GROUP x",
		"SELECT a FROM t trailing garbage tokens (",
		"SELECT a FROM t WHERE x NOT",
		"SELECT a FROM t WHERE x IN 1",
		"CREATE TABLE t (a int)",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestStatementTypes(t *testing.T) {
	cases := []struct {
		in   string
		want StatementType
	}{
		{"SELECT 1 FROM t", StmtSelect},
		{"INSERT INTO t VALUES (1)", StmtInsert},
		{"UPDATE t SET a = 1", StmtUpdate},
		{"DELETE FROM t", StmtDelete},
	}
	for _, c := range cases {
		stmt, err := Parse(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if stmt.Type() != c.want {
			t.Errorf("%q: type %v, want %v", c.in, stmt.Type(), c.want)
		}
	}
	if StmtSelect.String() != "SELECT" || StatementType(99).String() == "" {
		t.Error("StatementType.String misbehaves")
	}
}

func TestInsertBatchSize(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a) VALUES (1), (2), (3), (4)")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.(*InsertStmt).BatchSize(); got != 4 {
		t.Fatalf("BatchSize = %d", got)
	}
}

func TestWalkExprsReplacement(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE x = 5 AND y = 'z'")
	if err != nil {
		t.Fatal(err)
	}
	var count int
	WalkExprs(stmt, func(e Expr) Expr {
		if _, ok := e.(*Literal); ok {
			count++
			return &Placeholder{Text: "?"}
		}
		return nil
	})
	if count != 2 {
		t.Fatalf("visited %d literals, want 2", count)
	}
	if got := stmt.SQL(); !strings.Contains(got, "x = ?") || !strings.Contains(got, "y = ?") {
		t.Fatalf("replacement failed: %q", got)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE !")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestImplicitAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT a value FROM t")
	sel := stmt.(*SelectStmt)
	if sel.Items[0].Alias != "value" {
		t.Fatalf("implicit select alias = %q", sel.Items[0].Alias)
	}
	stmt = mustParse(t, "SELECT a FROM tbl x WHERE x.a = 1")
	sel = stmt.(*SelectStmt)
	if sel.From[0].Alias != "x" {
		t.Fatalf("implicit table alias = %q", sel.From[0].Alias)
	}
}

func TestKeywordsNotEatenAsAliases(t *testing.T) {
	// WHERE/GROUP/ORDER after a table name must start their clauses, not
	// become aliases.
	stmt := mustParse(t, "SELECT a FROM t WHERE a = 1")
	if stmt.(*SelectStmt).From[0].Alias != "" {
		t.Fatal("WHERE consumed as alias")
	}
	stmt = mustParse(t, "SELECT a FROM t ORDER BY a")
	if stmt.(*SelectStmt).From[0].Alias != "" {
		t.Fatal("ORDER consumed as alias")
	}
}

func TestDeeplyNestedExpression(t *testing.T) {
	sql := "SELECT a FROM t WHERE ((((a = 1))))"
	stmt := mustParse(t, sql)
	if got := stmt.SQL(); got != "SELECT a FROM t WHERE a = 1" {
		t.Fatalf("nested parens: %q", got)
	}
}

func TestNumericEdgeLiterals(t *testing.T) {
	for _, in := range []string{
		"SELECT a FROM t WHERE x = 0.5",
		"SELECT a FROM t WHERE x = 1e9",
		"SELECT a FROM t WHERE x = 2.5E-3",
		"SELECT a FROM t WHERE x = -7",
	} {
		stmt := mustParse(t, in)
		again, err := Parse(stmt.SQL())
		if err != nil {
			t.Fatalf("%q: re-parse: %v", in, err)
		}
		if again.SQL() != stmt.SQL() {
			t.Fatalf("%q: unstable canonical form", in)
		}
	}
}

func TestLargeInList(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("SELECT a FROM t WHERE x IN (")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", i)
	}
	sb.WriteString(")")
	stmt := mustParse(t, sb.String())
	in := stmt.(*SelectStmt).Where.(*InExpr)
	if len(in.Items) != 200 {
		t.Fatalf("IN items = %d", len(in.Items))
	}
}
