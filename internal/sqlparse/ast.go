package sqlparse

import (
	"fmt"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface {
	// Type returns the statement's command type.
	Type() StatementType
	// SQL renders the statement in canonical form: upper-case keywords,
	// single spacing, lower-case identifiers, normalized parentheses. This
	// is the normalization step of the Pre-Processor (§4).
	SQL() string
}

// StatementType enumerates the four DML commands in the traces.
type StatementType int

// Statement types.
const (
	StmtSelect StatementType = iota
	StmtInsert
	StmtUpdate
	StmtDelete
)

// String returns the SQL verb.
func (t StatementType) String() string {
	switch t {
	case StmtSelect:
		return "SELECT"
	case StmtInsert:
		return "INSERT"
	case StmtUpdate:
		return "UPDATE"
	case StmtDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("StatementType(%d)", int(t))
	}
}

// Expr is an expression node.
type Expr interface {
	// exprSQL renders the expression canonically.
	exprSQL(sb *strings.Builder)
}

// ExprSQL renders any expression in canonical form.
func ExprSQL(e Expr) string {
	var sb strings.Builder
	e.exprSQL(&sb)
	return sb.String()
}

// Literal is a constant value in the original query text.
type Literal struct {
	// Kind is one of "number", "string", "null", "bool".
	Kind string
	// Text is the literal's value: the digits for numbers, the unquoted
	// body for strings, "NULL", "TRUE", or "FALSE".
	Text string
}

func (l *Literal) exprSQL(sb *strings.Builder) {
	switch l.Kind {
	case "string":
		sb.WriteByte('\'')
		sb.WriteString(strings.ReplaceAll(l.Text, "'", "''"))
		sb.WriteByte('\'')
	default:
		sb.WriteString(l.Text)
	}
}

// Placeholder is a parameter marker: either one present in the original text
// ("?", "$1") or one the Pre-Processor substituted for a literal.
type Placeholder struct {
	Text string // canonical form is "?"
}

func (p *Placeholder) exprSQL(sb *strings.Builder) { sb.WriteString("?") }

// ColumnRef is a possibly table-qualified column reference.
type ColumnRef struct {
	Table  string // optional qualifier, lower-cased in canonical output
	Column string // "*" for star
}

func (c *ColumnRef) exprSQL(sb *strings.Builder) {
	if c.Table != "" {
		sb.WriteString(strings.ToLower(c.Table))
		sb.WriteByte('.')
	}
	sb.WriteString(strings.ToLower(c.Column))
}

// BinaryExpr is a binary operation (comparison, logical, or arithmetic).
// Op is upper-case: =, <, >, <=, >=, !=, LIKE, AND, OR, +, -, *, /, %.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

func (b *BinaryExpr) exprSQL(sb *strings.Builder) {
	if b.Op == "AND" || b.Op == "OR" {
		sb.WriteByte('(')
		b.Left.exprSQL(sb)
		sb.WriteByte(' ')
		sb.WriteString(b.Op)
		sb.WriteByte(' ')
		b.Right.exprSQL(sb)
		sb.WriteByte(')')
		return
	}
	b.Left.exprSQL(sb)
	sb.WriteByte(' ')
	sb.WriteString(b.Op)
	sb.WriteByte(' ')
	b.Right.exprSQL(sb)
}

// NotExpr negates an expression.
type NotExpr struct{ Inner Expr }

func (n *NotExpr) exprSQL(sb *strings.Builder) {
	sb.WriteString("NOT (")
	n.Inner.exprSQL(sb)
	sb.WriteByte(')')
}

// InExpr is `expr [NOT] IN (item, ...)`.
type InExpr struct {
	Left    Expr
	Items   []Expr
	Negated bool
}

func (e *InExpr) exprSQL(sb *strings.Builder) {
	e.Left.exprSQL(sb)
	if e.Negated {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for i, it := range e.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		it.exprSQL(sb)
	}
	sb.WriteByte(')')
}

// BetweenExpr is `expr [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	Left, Lo, Hi Expr
	Negated      bool
}

func (e *BetweenExpr) exprSQL(sb *strings.Builder) {
	e.Left.exprSQL(sb)
	if e.Negated {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" BETWEEN ")
	e.Lo.exprSQL(sb)
	sb.WriteString(" AND ")
	e.Hi.exprSQL(sb)
}

// IsNullExpr is `expr IS [NOT] NULL`.
type IsNullExpr struct {
	Left    Expr
	Negated bool
}

func (e *IsNullExpr) exprSQL(sb *strings.Builder) {
	e.Left.exprSQL(sb)
	if e.Negated {
		sb.WriteString(" IS NOT NULL")
	} else {
		sb.WriteString(" IS NULL")
	}
}

// FuncCall is a function invocation such as COUNT(*) or SUM(col).
type FuncCall struct {
	Name     string // upper-cased in canonical output
	Args     []Expr
	Distinct bool
	Star     bool // COUNT(*)
}

func (f *FuncCall) exprSQL(sb *strings.Builder) {
	sb.WriteString(strings.ToUpper(f.Name))
	sb.WriteByte('(')
	if f.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if f.Star {
		sb.WriteByte('*')
	}
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		a.exprSQL(sb)
	}
	sb.WriteByte(')')
}

// ParenExpr preserves explicit grouping around arithmetic.
type ParenExpr struct{ Inner Expr }

func (p *ParenExpr) exprSQL(sb *strings.Builder) {
	sb.WriteByte('(')
	p.Inner.exprSQL(sb)
	sb.WriteByte(')')
}

// SelectItem is one projection in a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (t *TableRef) sql(sb *strings.Builder) {
	sb.WriteString(strings.ToLower(t.Name))
	if t.Alias != "" {
		sb.WriteString(" AS ")
		sb.WriteString(strings.ToLower(t.Alias))
	}
}

// Join is an explicit join clause.
type Join struct {
	Kind  string // "INNER", "LEFT", "RIGHT"
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // comma-separated FROM list
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil if absent
	Offset   Expr // nil if absent
}

// Type implements Statement.
func (s *SelectStmt) Type() StatementType { return StmtSelect }

// SQL implements Statement.
func (s *SelectStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		it.Expr.exprSQL(&sb)
		if it.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(strings.ToLower(it.Alias))
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			s.From[i].sql(&sb)
		}
	}
	for i := range s.Joins {
		j := &s.Joins[i]
		sb.WriteByte(' ')
		sb.WriteString(j.Kind)
		sb.WriteString(" JOIN ")
		j.Table.sql(&sb)
		sb.WriteString(" ON ")
		j.On.exprSQL(&sb)
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		s.Where.exprSQL(&sb)
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			g.exprSQL(&sb)
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		s.Having.exprSQL(&sb)
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			o.Expr.exprSQL(&sb)
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		sb.WriteString(" LIMIT ")
		s.Limit.exprSQL(&sb)
	}
	if s.Offset != nil {
		sb.WriteString(" OFFSET ")
		s.Offset.exprSQL(&sb)
	}
	return sb.String()
}

// InsertStmt is an INSERT statement. BatchSize records how many VALUES
// tuples the original query carried; the Pre-Processor tracks it for batched
// INSERTs (§4).
type InsertStmt struct {
	Table   TableRef
	Columns []string
	Rows    [][]Expr
}

// Type implements Statement.
func (s *InsertStmt) Type() StatementType { return StmtInsert }

// BatchSize returns the number of VALUES tuples.
func (s *InsertStmt) BatchSize() int { return len(s.Rows) }

// SQL implements Statement.
func (s *InsertStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	s.Table.sql(&sb)
	if len(s.Columns) > 0 {
		sb.WriteString(" (")
		for i, c := range s.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(strings.ToLower(c))
		}
		sb.WriteByte(')')
	}
	sb.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			e.exprSQL(&sb)
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// Assignment is one `col = expr` in an UPDATE SET list.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is an UPDATE statement.
type UpdateStmt struct {
	Table TableRef
	Set   []Assignment
	Where Expr
}

// Type implements Statement.
func (s *UpdateStmt) Type() StatementType { return StmtUpdate }

// SQL implements Statement.
func (s *UpdateStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	s.Table.sql(&sb)
	sb.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strings.ToLower(a.Column))
		sb.WriteString(" = ")
		a.Value.exprSQL(&sb)
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		s.Where.exprSQL(&sb)
	}
	return sb.String()
}

// DeleteStmt is a DELETE statement.
type DeleteStmt struct {
	Table TableRef
	Where Expr
}

// Type implements Statement.
func (s *DeleteStmt) Type() StatementType { return StmtDelete }

// SQL implements Statement.
func (s *DeleteStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("DELETE FROM ")
	s.Table.sql(&sb)
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		s.Where.exprSQL(&sb)
	}
	return sb.String()
}
