// Package sqlparse implements a lexer, recursive-descent parser, and AST for
// the SQL dialect that the workload traces use (SELECT / INSERT / UPDATE /
// DELETE with joins, grouping, and the usual predicate forms).
//
// The paper relies on the target DBMS's parser to identify tokens when
// templatizing queries (§4); since this reproduction is self-contained, the
// parser is built here as a substrate. The Pre-Processor walks the AST to
// strip constants, normalize formatting, and extract the semantic features
// (tables, predicates, projections) used for template equivalence.
package sqlparse

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOperator // = < > <= >= != <> + - * / %
	TokComma
	TokLParen
	TokRParen
	TokDot
	TokSemicolon
	TokPlaceholder // ? or $1
)

// Token is a lexical token with its original text and byte offset.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Pos  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	return fmt.Sprintf("%s@%d", t.Text, t.Pos)
}

// keywords recognized by the lexer; matched case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "JOIN": true, "INNER": true, "LEFT": true,
	"RIGHT": true, "OUTER": true, "ON": true, "AS": true, "ORDER": true,
	"BY": true, "GROUP": true, "HAVING": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "TRUE": true, "FALSE": true,
	"EXISTS": true, "UNION": true, "ALL": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true,
}

// SyntaxError describes a lexing or parsing failure with its location.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sqlparse: %s at offset %d", e.Msg, e.Pos)
}

// Lex tokenizes a SQL string.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, &SyntaxError{Pos: i, Msg: "unterminated block comment"}
			}
			i += end + 4
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				if input[i] == '\\' && i+1 < n { // backslash escape
					sb.WriteByte(input[i+1])
					i += 2
					continue
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '"' || c == '`':
			// Quoted identifier.
			quote := c
			start := i
			i++
			j := i
			for j < n && input[j] != quote {
				j++
			}
			if j >= n {
				return nil, &SyntaxError{Pos: start, Msg: "unterminated quoted identifier"}
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[i:j], Pos: start})
			i = j + 1
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c == '?':
			toks = append(toks, Token{Kind: TokPlaceholder, Text: "?", Pos: i})
			i++
		case c == '$' && i+1 < n && isDigit(input[i+1]):
			start := i
			i++
			for i < n && isDigit(input[i]) {
				i++
			}
			toks = append(toks, Token{Kind: TokPlaceholder, Text: input[start:i], Pos: start})
		case c == ',':
			toks = append(toks, Token{Kind: TokComma, Text: ",", Pos: i})
			i++
		case c == '(':
			toks = append(toks, Token{Kind: TokLParen, Text: "(", Pos: i})
			i++
		case c == ')':
			toks = append(toks, Token{Kind: TokRParen, Text: ")", Pos: i})
			i++
		case c == '.':
			toks = append(toks, Token{Kind: TokDot, Text: ".", Pos: i})
			i++
		case c == ';':
			toks = append(toks, Token{Kind: TokSemicolon, Text: ";", Pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokOperator, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOperator, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOperator, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOperator, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOperator, Text: "!=", Pos: i})
				i += 2
			} else {
				return nil, &SyntaxError{Pos: i, Msg: "unexpected '!'"}
			}
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/' || c == '%':
			toks = append(toks, Token{Kind: TokOperator, Text: string(c), Pos: i})
			i++
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", rune(c))}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Text: "", Pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Identifiers are ASCII-only. The lexer walks bytes, so widening a single
// byte to a rune would misclassify stray non-UTF-8 bytes ≥ 0x80 as Latin-1
// letters and accept input whose canonical rendering cannot reparse.
func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || isIdentStart(c) || isDigit(c)
}
