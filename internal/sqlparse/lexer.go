// Package sqlparse implements a lexer, recursive-descent parser, and AST for
// the SQL dialect that the workload traces use (SELECT / INSERT / UPDATE /
// DELETE with joins, grouping, and the usual predicate forms).
//
// The paper relies on the target DBMS's parser to identify tokens when
// templatizing queries (§4); since this reproduction is self-contained, the
// parser is built here as a substrate. The Pre-Processor walks the AST to
// strip constants, normalize formatting, and extract the semantic features
// (tables, predicates, projections) used for template equivalence.
package sqlparse

import (
	"fmt"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOperator // = < > <= >= != <> + - * / %
	TokComma
	TokLParen
	TokRParen
	TokDot
	TokSemicolon
	TokPlaceholder // ? or $1
)

// Token is a lexical token with its original text and byte offset.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Pos  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	return fmt.Sprintf("%s@%d", t.Text, t.Pos)
}

// keywordText maps the upper-cased spelling of every keyword to its one
// interned canonical string, so keyword tokens never allocate: the lexer
// upper-cases candidate words into a stack buffer and the map lookup hands
// back the shared constant (matched case-insensitively).
var keywordText = map[string]string{
	"SELECT": "SELECT", "FROM": "FROM", "WHERE": "WHERE", "INSERT": "INSERT",
	"INTO": "INTO", "VALUES": "VALUES", "UPDATE": "UPDATE", "SET": "SET",
	"DELETE": "DELETE", "AND": "AND", "OR": "OR", "NOT": "NOT", "NULL": "NULL",
	"IN": "IN", "BETWEEN": "BETWEEN", "LIKE": "LIKE", "IS": "IS",
	"JOIN": "JOIN", "INNER": "INNER", "LEFT": "LEFT", "RIGHT": "RIGHT",
	"OUTER": "OUTER", "ON": "ON", "AS": "AS", "ORDER": "ORDER", "BY": "BY",
	"GROUP": "GROUP", "HAVING": "HAVING", "LIMIT": "LIMIT", "OFFSET": "OFFSET",
	"ASC": "ASC", "DESC": "DESC", "DISTINCT": "DISTINCT", "TRUE": "TRUE",
	"FALSE": "FALSE", "EXISTS": "EXISTS", "UNION": "UNION", "ALL": "ALL",
	"CASE": "CASE", "WHEN": "WHEN", "THEN": "THEN", "ELSE": "ELSE",
	"END": "END",
}

// maxKeywordLen bounds the stack scratch keywordFor upper-cases into; words
// longer than every keyword skip the lookup entirely.
var maxKeywordLen = func() int {
	n := 0
	for k := range keywordText {
		if len(k) > n {
			n = len(k)
		}
	}
	return n
}()

// keywordFor reports whether word is a keyword (case-insensitively) and
// returns its interned canonical upper-case text. It does not allocate: the
// upper-cased copy lives in a stack buffer, and Go map lookups with a
// string-converted byte slice key do not copy.
//
// qb5000:noalloc
func keywordFor(word string) (string, bool) {
	if len(word) > maxKeywordLen || len(word) > 16 {
		return "", false
	}
	var buf [16]byte
	for i := 0; i < len(word); i++ {
		c := word[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	kw, ok := keywordText[string(buf[:len(word)])]
	return kw, ok
}

// SyntaxError describes a lexing or parsing failure with its location.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sqlparse: %s at offset %d", e.Msg, e.Pos)
}

// Lex tokenizes a SQL string into a freshly allocated token slice. The hot
// observe path goes through Parse, which lexes into a pooled scratch buffer
// instead; Lex stays for callers that retain the tokens.
func Lex(input string) ([]Token, error) {
	return lexInto(nil, input)
}

// lexInto tokenizes input, appending to dst (typically a pooled buffer with
// its length reset to zero) and returning the extended slice. It is a
// single-index byte walk over the raw string: every token's Text is either a
// substring of input, an interned keyword, or — only for string literals
// that actually contain escapes — a freshly unescaped string, so steady
// state lexing allocates nothing beyond amortized slice growth.
//
// qb5000:noalloc
func lexInto(dst []Token, input string) ([]Token, error) {
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			j := i + 2
			for j+1 < n && !(input[j] == '*' && input[j+1] == '/') {
				j++
			}
			if j+1 >= n {
				return dst, &SyntaxError{Pos: i, Msg: "unterminated block comment"}
			}
			i = j + 2
		case c == '\'':
			//lint:ignore noalloc escape-free literals return substrings; only escaped literals take the allocating slow path
			text, next, serr := lexString(input, i)
			if serr != nil {
				return dst, serr
			}
			dst = append(dst, Token{Kind: TokString, Text: text, Pos: i})
			i = next
		case c == '"' || c == '`':
			// Quoted identifier.
			quote := c
			start := i
			i++
			j := i
			for j < n && input[j] != quote {
				j++
			}
			if j >= n {
				return dst, &SyntaxError{Pos: start, Msg: "unterminated quoted identifier"}
			}
			dst = append(dst, Token{Kind: TokIdent, Text: input[i:j], Pos: start})
			i = j + 1
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			dst = append(dst, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			if kw, ok := keywordFor(word); ok {
				dst = append(dst, Token{Kind: TokKeyword, Text: kw, Pos: start})
			} else {
				dst = append(dst, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c == '?':
			dst = append(dst, Token{Kind: TokPlaceholder, Text: "?", Pos: i})
			i++
		case c == '$' && i+1 < n && isDigit(input[i+1]):
			start := i
			i++
			for i < n && isDigit(input[i]) {
				i++
			}
			dst = append(dst, Token{Kind: TokPlaceholder, Text: input[start:i], Pos: start})
		case c == ',':
			dst = append(dst, Token{Kind: TokComma, Text: ",", Pos: i})
			i++
		case c == '(':
			dst = append(dst, Token{Kind: TokLParen, Text: "(", Pos: i})
			i++
		case c == ')':
			dst = append(dst, Token{Kind: TokRParen, Text: ")", Pos: i})
			i++
		case c == '.':
			dst = append(dst, Token{Kind: TokDot, Text: ".", Pos: i})
			i++
		case c == ';':
			dst = append(dst, Token{Kind: TokSemicolon, Text: ";", Pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				dst = append(dst, Token{Kind: TokOperator, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				dst = append(dst, Token{Kind: TokOperator, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				dst = append(dst, Token{Kind: TokOperator, Text: ">=", Pos: i})
				i += 2
			} else {
				dst = append(dst, Token{Kind: TokOperator, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				dst = append(dst, Token{Kind: TokOperator, Text: "!=", Pos: i})
				i += 2
			} else {
				return dst, &SyntaxError{Pos: i, Msg: "unexpected '!'"}
			}
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/' || c == '%':
			dst = append(dst, Token{Kind: TokOperator, Text: opText(c), Pos: i})
			i++
		default:
			return dst, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", rune(c))}
		}
	}
	dst = append(dst, Token{Kind: TokEOF, Text: "", Pos: n})
	return dst, nil
}

// opText returns the interned one-byte operator text so single-character
// operator tokens never allocate a fresh string.
//
// qb5000:noalloc
func opText(c byte) string {
	switch c {
	case '=':
		return "="
	case '+':
		return "+"
	case '-':
		return "-"
	case '*':
		return "*"
	case '/':
		return "/"
	case '%':
		return "%"
	}
	//lint:ignore noalloc unreachable default: callers pass only the six interned operator bytes above
	return string(c)
}

// lexString scans the single-quoted literal starting at input[start] ('),
// returning its unescaped text and the index past the closing quote.
// Literals without escapes — the overwhelmingly common case — return a
// substring of input and allocate nothing; only doubled-quote and
// backslash escapes fall back to building the unescaped copy.
func lexString(input string, start int) (string, int, *SyntaxError) {
	n := len(input)
	i := start + 1
	for i < n {
		c := input[i]
		if c == '\'' {
			if i+1 < n && input[i+1] == '\'' {
				// Escaped quote: take the slow path from the top.
				return lexStringSlow(input, start)
			}
			return input[start+1 : i], i + 1, nil
		}
		if c == '\\' && i+1 < n {
			return lexStringSlow(input, start)
		}
		i++
	}
	return "", n, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
}

// lexStringSlow unescapes a string literal that contains doubled-quote or
// backslash escapes into a fresh buffer.
func lexStringSlow(input string, start int) (string, int, *SyntaxError) {
	n := len(input)
	i := start + 1
	buf := make([]byte, 0, 16)
	for i < n {
		if input[i] == '\'' {
			if i+1 < n && input[i+1] == '\'' { // escaped quote
				buf = append(buf, '\'')
				i += 2
				continue
			}
			return string(buf), i + 1, nil
		}
		if input[i] == '\\' && i+1 < n { // backslash escape
			buf = append(buf, input[i+1])
			i += 2
			continue
		}
		buf = append(buf, input[i])
		i++
	}
	return "", n, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Identifiers are ASCII-only. The lexer walks bytes, so widening a single
// byte to a rune would misclassify stray non-UTF-8 bytes ≥ 0x80 as Latin-1
// letters and accept input whose canonical rendering cannot reparse.
func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || isIdentStart(c) || isDigit(c)
}
