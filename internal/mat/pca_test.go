package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestPCALineRecovery(t *testing.T) {
	// Points along direction (3,4)/5 with small orthogonal noise: the first
	// principal component must align with that direction.
	rng := rand.New(rand.NewSource(3))
	n := 500
	x := New(n, 2)
	dir := []float64{0.6, 0.8}
	for i := 0; i < n; i++ {
		s := rng.NormFloat64() * 10
		e := rng.NormFloat64() * 0.1
		x.Set(i, 0, s*dir[0]-e*dir[1])
		x.Set(i, 1, s*dir[1]+e*dir[0])
	}
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := p.Components.Row(0)
	// Component sign is arbitrary.
	dot := math.Abs(c0[0]*dir[0] + c0[1]*dir[1])
	if dot < 0.999 {
		t.Fatalf("first component %v not aligned with %v (|dot|=%v)", c0, dir, dot)
	}
	if p.Explained[0] < p.Explained[1] {
		t.Fatalf("explained variance not sorted: %v", p.Explained)
	}
}

func TestPCATransformCentersData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := New(100, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() + 5
	}
	p, err := FitPCA(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Transform(x)
	// Projected data must have (near) zero mean per component.
	for c := 0; c < proj.Cols; c++ {
		var mean float64
		for i := 0; i < proj.Rows; i++ {
			mean += proj.At(i, c)
		}
		mean /= float64(proj.Rows)
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("component %d mean = %v, want ~0", c, mean)
		}
	}
}

func TestPCAPreservesDistancesInFullRank(t *testing.T) {
	// With k = d, PCA is a rotation: pairwise distances are preserved.
	rng := rand.New(rand.NewSource(8))
	x := New(40, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	p, err := FitPCA(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Components.Rows < 4 {
		t.Skipf("degenerate spectrum: only %d components", p.Components.Rows)
	}
	proj := p.Transform(x)
	dist := func(m *Matrix, i, j int) float64 {
		var s float64
		for c := 0; c < m.Cols; c++ {
			d := m.At(i, c) - m.At(j, c)
			s += d * d
		}
		return math.Sqrt(s)
	}
	for trial := 0; trial < 30; trial++ {
		i, j := rng.Intn(40), rng.Intn(40)
		d0, d1 := dist(x, i, j), dist(proj, i, j)
		if !almostEqual(d0, d1, 1e-4) {
			t.Fatalf("distance not preserved: %v vs %v", d0, d1)
		}
	}
}

func TestPCAVec(t *testing.T) {
	x, _ := FromRows([][]float64{{1, 0}, {-1, 0}, {2, 0}, {-2, 0}})
	p, err := FitPCA(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := p.TransformVec([]float64{3, 0})
	if len(v) != 1 {
		t.Fatalf("want 1-dim projection, got %v", v)
	}
	if math.Abs(math.Abs(v[0])-3) > 1e-6 {
		t.Fatalf("projection magnitude %v, want 3", v[0])
	}
}

func TestPCAEmpty(t *testing.T) {
	p, err := FitPCA(New(0, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Components.Rows != 0 {
		t.Fatalf("expected no components, got %d", p.Components.Rows)
	}
}
