package mat

import (
	"fmt"
	"math"
)

// SolveLinearMulti solves a*X = B column-by-column with one shared LU-style
// elimination, where B has one column per right-hand side. a is not
// modified.
func SolveLinearMulti(a, b *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: solve needs square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	if b.Rows != n {
		return nil, fmt.Errorf("%w: rhs has %d rows, want %d", ErrShape, b.Rows, n)
	}
	aug := a.Clone()
	rhs := b.Clone()

	for col := 0; col < n; col++ {
		pivot, max := col, math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > max {
				pivot, max = r, v
			}
		}
		if max < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := aug.Row(pivot), aug.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			pr, cr = rhs.Row(pivot), rhs.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
		}
		pv := aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) / pv
			//lint:ignore floateq skipping exact zeros is an elimination fast path, not a tolerance check
			if f == 0 {
				continue
			}
			rr, cr := aug.Row(r), aug.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			rr, cr = rhs.Row(r), rhs.Row(col)
			for j := range rr {
				rr[j] -= f * cr[j]
			}
		}
	}
	x := New(n, b.Cols)
	for i := n - 1; i >= 0; i-- {
		arow := aug.Row(i)
		xrow := x.Row(i)
		copy(xrow, rhs.Row(i))
		for j := i + 1; j < n; j++ {
			f := arow[j]
			//lint:ignore floateq skipping exact zeros is an elimination fast path, not a tolerance check
			if f == 0 {
				continue
			}
			xj := x.Row(j)
			for c := range xrow {
				xrow[c] -= f * xj[c]
			}
		}
		inv := 1 / arow[i]
		for c := range xrow {
			xrow[c] *= inv
		}
	}
	return x, nil
}

// SolveRidgeMulti solves (XᵀX + λI) W = XᵀY for multi-output targets and
// returns W transposed into shape outputs x features, i.e. one weight row
// per output column of y. The Gram matrix is factored once and reused
// across outputs.
func SolveRidgeMulti(x, y *Matrix, lambda float64) (*Matrix, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrShape, x.Rows, y.Rows)
	}
	xt := x.T()
	gram, err := Mul(xt, x)
	if err != nil {
		return nil, err
	}
	for i := 0; i < gram.Rows; i++ {
		gram.Data[i*gram.Cols+i] += lambda
	}
	xty, err := Mul(xt, y)
	if err != nil {
		return nil, err
	}
	w, err := SolveLinearMulti(gram, xty)
	if err != nil {
		return nil, err
	}
	return w.T(), nil
}
