package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("Set/At mismatch")
	}
	if got := m.Row(1); got[2] != 7 {
		t.Fatalf("Row view mismatch: %v", got)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("want 3, got %v", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("expected ragged-row error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("empty FromRows: %v %v", empty, err)
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := MulVec(a, []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(4, 7)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	tt := m.T().T()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("T().T() is not identity")
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 1}, []float64{2, 2}, 1},
		{[]float64{1, 0}, []float64{-1, 0}, -1},
		{[]float64{0, 0}, []float64{0, 0}, 1},
		{[]float64{0, 0}, []float64{1, 0}, 0},
	}
	for _, c := range cases {
		if got := CosineSimilarity(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("cos(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCosineSimilarityBounds(t *testing.T) {
	f := func(a, b [8]float64) bool {
		got := CosineSimilarity(a[:], b[:])
		return got >= -1-1e-9 && got <= 1+1e-9 &&
			almostEqual(got, CosineSimilarity(b[:], a[:]), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Fatalf("solution %v, want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

// TestSolveLinearProperty: for random well-conditioned systems,
// a*solve(a, b) ≈ b.
func TestSolveLinearProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ { // diagonal dominance for conditioning
			a.Data[i*n+i] += float64(n) + 1
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back, _ := MulVec(a, x)
		for i := range b {
			if !almostEqual(back[i], b[i], 1e-8) {
				t.Fatalf("trial %d: a*x = %v, want %v", trial, back, b)
			}
		}
	}
}

func TestSolveRidgeRecoversWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// y = 3*x0 - 2*x1 + 0.5 with plenty of samples and tiny ridge.
	n := 200
	x := New(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, x0)
		x.Set(i, 1, x1)
		x.Set(i, 2, 1)
		y[i] = 3*x0 - 2*x1 + 0.5
	}
	w, err := SolveRidge(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for i := range want {
		if !almostEqual(w[i], want[i], 1e-6) {
			t.Fatalf("w = %v, want %v", w, want)
		}
	}
}

func TestSolveRidgeMultiMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, d, k := 40, 5, 3
	x := New(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := New(n, k)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	multi, err := SolveRidgeMulti(x, y, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < k; o++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = y.At(i, o)
		}
		single, err := SolveRidge(x, col, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < d; j++ {
			if !almostEqual(multi.At(o, j), single[j], 1e-8) {
				t.Fatalf("output %d: multi %v vs single %v", o, multi.Row(o), single)
			}
		}
	}
}

func TestCholesky(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Check L*Lᵀ = a.
	llt, _ := Mul(l, l.T())
	for i := range a.Data {
		if !almostEqual(llt.Data[i], a.Data[i], 1e-9) {
			t.Fatalf("L*Lᵀ = %v, want %v", llt.Data, a.Data)
		}
	}
	// Non-PD matrix must fail.
	bad, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := Cholesky(bad); err == nil {
		t.Fatal("expected non-PD error")
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
	v := []float64{1, 2, 3, 4}
	if Mean(v) != 2.5 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if !almostEqual(Variance(v), 1.25, 1e-12) {
		t.Fatalf("Variance = %v", Variance(v))
	}
}

func TestSolveLinearMultiErrors(t *testing.T) {
	a := New(2, 3)
	if _, err := SolveLinearMulti(a, New(2, 1)); err == nil {
		t.Fatal("non-square accepted")
	}
	sq := New(2, 2)
	if _, err := SolveLinearMulti(sq, New(3, 1)); err == nil {
		t.Fatal("rhs row mismatch accepted")
	}
	singular, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := SolveLinearMulti(singular, New(2, 1)); err == nil {
		t.Fatal("singular accepted")
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestCosineSimilarityExtremeValues(t *testing.T) {
	big := []float64{1e308, 1e308}
	if got := CosineSimilarity(big, big); got != 1 {
		t.Fatalf("cos(big, big) = %v", got)
	}
	if got := CosineSimilarity(big, []float64{-1e308, -1e308}); got != -1 {
		t.Fatalf("cos(big, -big) = %v", got)
	}
}
