// Package mat provides the small dense linear-algebra kernels that the
// forecasting models need: vectors, row-major matrices, linear solves,
// Cholesky decomposition, and PCA via the power method. It is intentionally
// minimal — just enough for closed-form regression, kernel methods, and the
// dimensionality reduction used in the spike-analysis experiment.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("mat: singular matrix")

// ErrShape is returned when operand dimensions do not conform.
var ErrShape = errors.New("mat: dimension mismatch")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero matrix with the given dimensions.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			//lint:ignore floateq skipping exact zeros is a sparsity fast path, not a tolerance check
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a*x for a vector x.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrShape, a.Rows, a.Cols, len(x))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors. It panics if
// the lengths differ because that is always a programming error.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between a and b, the
// similarity metric the clusterer uses for arrival-rate feature vectors.
// If either vector is all zeros the similarity is defined as 1 when both are
// zero (identical silence) and 0 otherwise.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: CosineSimilarity length mismatch %d vs %d", len(a), len(b)))
	}
	// Scale by the largest magnitude first so the norms cannot overflow
	// even for extreme inputs.
	var maxAbs float64
	for _, v := range a {
		if m := math.Abs(v); m > maxAbs {
			maxAbs = m
		}
	}
	for _, v := range b {
		if m := math.Abs(v); m > maxAbs {
			maxAbs = m
		}
	}
	//lint:ignore floateq both vectors are exactly zero only when every element is
	if maxAbs == 0 {
		return 1 // both zero vectors: identical silence
	}
	var dot, na2, nb2 float64
	for i := range a {
		x, y := a[i]/maxAbs, b[i]/maxAbs
		dot += x * y
		na2 += x * x
		nb2 += y * y
	}
	//lint:ignore floateq guards exact division by zero after scaling
	if na2 == 0 || nb2 == 0 {
		return 0
	}
	c := dot / math.Sqrt(na2*nb2)
	// Guard against rounding drift outside [-1, 1].
	if c > 1 {
		return 1
	}
	if c < -1 {
		return -1
	}
	return c
}

// SolveLinear solves a*x = b with Gaussian elimination and partial pivoting.
// a is not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: solve needs square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), n)
	}
	aug := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, max := col, math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > max {
				pivot, max = r, v
			}
		}
		if max < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := aug.Row(pivot), aug.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			rhs[pivot], rhs[col] = rhs[col], rhs[pivot]
		}
		pv := aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) / pv
			//lint:ignore floateq skipping exact zeros is an elimination fast path, not a tolerance check
			if f == 0 {
				continue
			}
			rr, cr := aug.Row(r), aug.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		row := aug.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// SolveRidge solves the ridge-regularized least squares problem
// (XᵀX + λI) w = Xᵀy and returns w. This is the closed-form fit used by the
// linear autoregressive forecasting model.
func SolveRidge(x *Matrix, y []float64, lambda float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrShape, x.Rows, len(y))
	}
	xt := x.T()
	gram, err := Mul(xt, x)
	if err != nil {
		return nil, err
	}
	for i := 0; i < gram.Rows; i++ {
		gram.Data[i*gram.Cols+i] += lambda
	}
	xty, err := MulVec(xt, y)
	if err != nil {
		return nil, err
	}
	return SolveLinear(gram, xty)
}

// Cholesky computes the lower-triangular L with L*Lᵀ = a for a symmetric
// positive-definite matrix a.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: cholesky needs square matrix", ErrShape)
	}
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mu := Mean(v)
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return s / float64(len(v))
}
