package mat

import "math"

// PCA projects the rows of x onto its top-k principal components, the
// dimensionality reduction used to visualize the kernel-regression input
// space in the spike-prediction analysis (paper Appendix B, Figure 15).
//
// The components are found by repeated power iteration with deflation on the
// covariance matrix, which avoids a full eigendecomposition while remaining
// deterministic: the starting vector for each component is the canonical
// basis vector with the largest residual variance.
type PCA struct {
	Mean       []float64 // column means of the training data
	Components *Matrix   // k x d matrix of principal directions (rows)
	Explained  []float64 // eigenvalue (variance) per component
}

// FitPCA computes the top-k principal components of the rows of x.
// k is clamped to the number of columns.
func FitPCA(x *Matrix, k int) (*PCA, error) {
	n, d := x.Rows, x.Cols
	if n == 0 || d == 0 {
		return &PCA{Mean: make([]float64, d), Components: New(0, d)}, nil
	}
	if k > d {
		k = d
	}

	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	centered := New(n, d)
	for i := 0; i < n; i++ {
		src, dst := x.Row(i), centered.Row(i)
		for j, v := range src {
			dst[j] = v - mean[j]
		}
	}

	// Covariance matrix (d x d).
	cov, err := Mul(centered.T(), centered)
	if err != nil {
		return nil, err
	}
	denom := float64(n - 1)
	if denom < 1 {
		denom = 1
	}
	for i := range cov.Data {
		cov.Data[i] /= denom
	}

	comps := New(k, d)
	explained := make([]float64, k)
	work := cov.Clone()
	for c := 0; c < k; c++ {
		vec, lambda := powerIteration(work)
		if lambda <= 1e-12 {
			// Remaining variance is numerically zero; stop early.
			comps = comps.slice(c)
			explained = explained[:c]
			break
		}
		copy(comps.Row(c), vec)
		explained[c] = lambda
		deflate(work, vec, lambda)
	}
	return &PCA{Mean: mean, Components: comps, Explained: explained}, nil
}

// slice returns the first r rows of m as a new matrix header sharing data.
func (m *Matrix) slice(r int) *Matrix {
	return &Matrix{Rows: r, Cols: m.Cols, Data: m.Data[:r*m.Cols]}
}

// Transform projects each row of x into the component space.
func (p *PCA) Transform(x *Matrix) *Matrix {
	k := p.Components.Rows
	out := New(x.Rows, k)
	buf := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			buf[j] = v - p.Mean[j]
		}
		dst := out.Row(i)
		for c := 0; c < k; c++ {
			dst[c] = Dot(p.Components.Row(c), buf)
		}
	}
	return out
}

// TransformVec projects a single sample.
func (p *PCA) TransformVec(v []float64) []float64 {
	x := &Matrix{Rows: 1, Cols: len(v), Data: append([]float64(nil), v...)}
	return p.Transform(x).Row(0)
}

func powerIteration(a *Matrix) (vec []float64, eigenvalue float64) {
	d := a.Rows
	// Deterministic start: basis vector for the column with max diagonal.
	start, max := 0, a.At(0, 0)
	for i := 1; i < d; i++ {
		if v := a.At(i, i); v > max {
			start, max = i, v
		}
	}
	v := make([]float64, d)
	v[start] = 1
	var lambda float64
	for iter := 0; iter < 300; iter++ {
		w, _ := MulVec(a, v)
		n := Norm2(w)
		//lint:ignore floateq an exactly zero norm means the iterate vanished; any epsilon would mask real convergence
		if n == 0 {
			return v, 0
		}
		for i := range w {
			w[i] /= n
		}
		newLambda := Dot(w, mustMulVec(a, w))
		converged := math.Abs(newLambda-lambda) < 1e-10*(math.Abs(newLambda)+1e-30)
		v, lambda = w, newLambda
		if converged && iter > 2 {
			break
		}
	}
	return v, lambda
}

func mustMulVec(a *Matrix, x []float64) []float64 {
	out, err := MulVec(a, x)
	if err != nil {
		panic(err)
	}
	return out
}

func deflate(a *Matrix, vec []float64, lambda float64) {
	d := a.Rows
	for i := 0; i < d; i++ {
		row := a.Row(i)
		for j := 0; j < d; j++ {
			row[j] -= lambda * vec[i] * vec[j]
		}
	}
}
