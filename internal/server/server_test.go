package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qb5000"
	"qb5000/internal/leakcheck"
)

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	// Cleanups run LIFO: the server closes, then the shared client drops
	// its keep-alive connections, and only then does the leak check assert
	// that every handler and transport goroutine is gone.
	t.Cleanup(leakcheck.Take(t).Done)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	f := qb5000.New(qb5000.Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 1})
	s := New(f)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// traceBody builds two days of observations for one hot query.
func traceBody() string {
	var sb strings.Builder
	start := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 48; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		rate := 10 + 5*(h%24)
		fmt.Fprintf(&sb, "%s\t%d\tSELECT a FROM t WHERE x = %d\n", at.Format(time.RFC3339), rate, h)
	}
	return sb.String()
}

func TestObserveMaintainForecast(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(traceBody()))
	if err != nil {
		t.Fatal(err)
	}
	var obs ObserveResult
	if err := json.NewDecoder(resp.Body).Decode(&obs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if obs.Ingested == 0 || obs.Rejected != 0 {
		t.Fatalf("observe = %+v", obs)
	}

	resp, err = http.Post(ts.URL+"/maintain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st qb5000.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Templates != 1 || st.Clusters != 1 {
		t.Fatalf("stats after maintain = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/forecast?horizon=1h")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status %d", resp.StatusCode)
	}
	var preds []qb5000.ClusterForecast
	if err := json.NewDecoder(resp.Body).Decode(&preds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(preds) != 1 || preds[0].TotalRate < 0 {
		t.Fatalf("forecast = %+v", preds)
	}
}

func TestObserveCountsRejections(t *testing.T) {
	ts, _ := newTestServer(t)
	body := "2018-05-01T00:00:00Z\tNOT VALID SQL\n2018-05-01T00:00:00Z\tSELECT a FROM t\n"
	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var obs ObserveResult
	json.NewDecoder(resp.Body).Decode(&obs)
	resp.Body.Close()
	if obs.Ingested != 1 || obs.Rejected != 1 {
		t.Fatalf("observe = %+v", obs)
	}
}

func TestEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	// Maintain before any observations.
	resp, _ := http.Post(ts.URL+"/maintain", "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("maintain-empty status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad horizon.
	resp, _ = http.Get(ts.URL + "/forecast?horizon=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-horizon status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Untrained horizon.
	resp, _ = http.Post(ts.URL+"/observe", "text/plain", strings.NewReader("2018-05-01T00:00:00Z\tSELECT a FROM t\n"))
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/forecast?horizon=9h")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("untrained-horizon status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Wrong methods.
	resp, _ = http.Get(ts.URL + "/observe")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /observe status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/stats", "", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Malformed trace body.
	resp, _ = http.Post(ts.URL+"/observe", "text/plain", strings.NewReader("no tab"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed-body status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestStatsAndTemplates(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(traceBody()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st qb5000.Stats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.TotalQueries == 0 {
		t.Fatalf("stats = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/templates")
	if err != nil {
		t.Fatal(err)
	}
	var templates []qb5000.TemplateInfo
	json.NewDecoder(resp.Body).Decode(&templates)
	resp.Body.Close()
	if len(templates) != 1 || !strings.Contains(templates[0].SQL, "?") {
		t.Fatalf("templates = %+v", templates)
	}
}
