package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qb5000"
	"qb5000/internal/leakcheck"
)

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	return newTestServerWithConfig(t, Config{})
}

func newTestServerWithConfig(t *testing.T, c Config) (*httptest.Server, *Server) {
	t.Helper()
	// Cleanups run LIFO: the server closes, then the shared client drops
	// its keep-alive connections, and only then does the leak check assert
	// that every handler and transport goroutine is gone.
	t.Cleanup(leakcheck.Take(t).Done)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	f := qb5000.New(qb5000.Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 1})
	s := NewWithConfig(f, c)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// traceBody builds two days of observations for one hot query.
func traceBody() string {
	var sb strings.Builder
	start := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 48; h++ {
		at := start.Add(time.Duration(h) * time.Hour)
		rate := 10 + 5*(h%24)
		fmt.Fprintf(&sb, "%s\t%d\tSELECT a FROM t WHERE x = %d\n", at.Format(time.RFC3339), rate, h)
	}
	return sb.String()
}

func TestObserveMaintainForecast(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(traceBody()))
	if err != nil {
		t.Fatal(err)
	}
	var obs ObserveResult
	if err := json.NewDecoder(resp.Body).Decode(&obs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if obs.Ingested == 0 || obs.Rejected != 0 {
		t.Fatalf("observe = %+v", obs)
	}

	resp, err = http.Post(ts.URL+"/maintain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st qb5000.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Templates != 1 || st.Clusters != 1 {
		t.Fatalf("stats after maintain = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/forecast?horizon=1h")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status %d", resp.StatusCode)
	}
	var preds []qb5000.ClusterForecast
	if err := json.NewDecoder(resp.Body).Decode(&preds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(preds) != 1 || preds[0].TotalRate < 0 {
		t.Fatalf("forecast = %+v", preds)
	}
}

func TestObserveCountsRejections(t *testing.T) {
	ts, _ := newTestServer(t)
	body := "2018-05-01T00:00:00Z\tNOT VALID SQL\n2018-05-01T00:00:00Z\tSELECT a FROM t\n"
	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var obs ObserveResult
	json.NewDecoder(resp.Body).Decode(&obs)
	resp.Body.Close()
	if obs.Ingested != 1 || obs.Rejected != 1 {
		t.Fatalf("observe = %+v", obs)
	}
}

func TestEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	// Maintain before any observations.
	resp, _ := http.Post(ts.URL+"/maintain", "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("maintain-empty status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad horizon.
	resp, _ = http.Get(ts.URL + "/forecast?horizon=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-horizon status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Untrained horizon.
	resp, _ = http.Post(ts.URL+"/observe", "text/plain", strings.NewReader("2018-05-01T00:00:00Z\tSELECT a FROM t\n"))
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/forecast?horizon=9h")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("untrained-horizon status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Wrong methods.
	resp, _ = http.Get(ts.URL + "/observe")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /observe status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/stats", "", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Malformed trace body.
	resp, _ = http.Post(ts.URL+"/observe", "text/plain", strings.NewReader("no tab"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed-body status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestStatsAndTemplates(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(traceBody()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st qb5000.Stats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.TotalQueries == 0 {
		t.Fatalf("stats = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/templates")
	if err != nil {
		t.Fatal(err)
	}
	var templates []qb5000.TemplateInfo
	json.NewDecoder(resp.Body).Decode(&templates)
	resp.Body.Close()
	if len(templates) != 1 || !strings.Contains(templates[0].SQL, "?") {
		t.Fatalf("templates = %+v", templates)
	}
}

// TestStatsAdmissionSection checks that /stats now carries both gates'
// counters alongside the catalog statistics, and that the embedded catalog
// fields still decode under their original names for existing clients.
func TestStatsAdmissionSection(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(traceBody()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.TotalQueries == 0 {
		t.Fatalf("embedded catalog stats lost: %+v", st)
	}
	if st.Admission.Observe.Admitted != 1 || st.Admission.Observe.Shed != 0 {
		t.Fatalf("observe admission stats = %+v", st.Admission.Observe)
	}
	if st.Admission.Observe.MaxInflight != 0 {
		t.Fatalf("unlimited gate reports MaxInflight %d", st.Admission.Observe.MaxInflight)
	}
}

// TestObserveBodyLimit checks the /observe body cap: a shipment larger than
// MaxBodyBytes is cut off mid-stream and answered with 413, while one under
// the cap ingests normally.
func TestObserveBodyLimit(t *testing.T) {
	ts, _ := newTestServerWithConfig(t, Config{MaxBodyBytes: 256})

	line := "2018-05-01T00:00:00Z\tSELECT a FROM t WHERE x = 1\n"
	big := strings.Repeat(line, 1+256/len(line))
	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body status %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/observe", "text/plain", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	var obs ObserveResult
	json.NewDecoder(resp.Body).Decode(&obs)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || obs.Ingested != 1 {
		t.Fatalf("small body status %d, observe %+v", resp.StatusCode, obs)
	}
}

// gatedReader is a request body that parks the handler inside its permit:
// the first Read closes entered (the handler has passed admission and holds
// the gate), then every Read blocks until release is closed.
type gatedReader struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
	data    *strings.Reader
}

func (g *gatedReader) Read(p []byte) (int, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.data.Read(p)
}

// TestAdmissionSaturation drives a 1-permit /observe gate to saturation: one
// request parks inside the permit while GOMAXPROCS concurrent ingesters all
// shed with 429 + Retry-After. The accounting must be exact — every request
// either admitted or shed, inflight drains to zero — and the shed requests
// must never reach the catalog.
func TestAdmissionSaturation(t *testing.T) {
	ts, s := newTestServerWithConfig(t, Config{MaxInflight: 1})

	holder := &gatedReader{
		entered: make(chan struct{}),
		release: make(chan struct{}),
		data:    strings.NewReader("2018-05-01T00:00:00Z\tSELECT a FROM t\n"),
	}
	holderCode := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/observe", "text/plain", holder)
		if err != nil {
			holderCode <- -1
			return
		}
		resp.Body.Close()
		holderCode <- resp.StatusCode
	}()
	<-holder.entered // the permit is held; the handler is parked in Read

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	codes := make([]int, workers)
	retryAfter := make([]string, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/observe", "text/plain",
				strings.NewReader("2018-05-01T01:00:00Z\tSELECT b FROM u\n"))
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Errorf("ingester %d status %d, want 429", i, code)
		}
		if retryAfter[i] == "" {
			t.Errorf("ingester %d shed without a Retry-After hint", i)
		}
	}

	close(holder.release)
	if code := <-holderCode; code != http.StatusOK {
		t.Fatalf("admitted request status %d, want 200", code)
	}

	st := s.observeGate.Stats()
	if st.Admitted != 1 || st.Shed != int64(workers) {
		t.Fatalf("gate stats = %+v, want 1 admitted / %d shed", st, workers)
	}
	if st.Inflight != 0 {
		t.Fatalf("gate still reports %d inflight after drain", st.Inflight)
	}
	// Shed requests were answered before a single body byte was parsed: only
	// the admitted request's one line reached the catalog.
	if got := s.f.Stats().TotalQueries; got != 1 {
		t.Fatalf("catalog saw %d queries, want 1 (shed traffic must not ingest)", got)
	}
}
