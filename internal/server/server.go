// Package server exposes a Forecaster over HTTP — the paper's "external
// controller" deployment (§3): the target DBMS (or a log shipper) forwards
// executed queries to the framework, which runs on separate hardware, and
// the planning module polls it for forecasts.
//
// Endpoints:
//
//	POST /observe    trace lines (timestamp<TAB>[count<TAB>]SQL, see
//	                 internal/tracefile); returns counts ingested/rejected
//	POST /maintain   force a re-cluster + retrain at the latest observed time
//	GET  /forecast   ?horizon=1h → JSON cluster forecasts
//	GET  /stats      JSON reduction statistics
//	GET  /templates  JSON template catalog
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"encoding/json"

	"qb5000"
	"qb5000/internal/tracefile"
)

// ErrNoObservations is returned by Maintain before any query has been
// observed (there is no clock to maintain against yet).
var ErrNoObservations = errors.New("server: no observations yet")

// Server wraps a Forecaster with HTTP handlers. The Forecaster is itself
// safe for concurrent use (ingest goes to the sharded catalog's stripe
// locks, maintenance publishes copy-on-write epochs), so the handlers call
// it directly; the server only guards its own lastSeen clock.
type Server struct {
	f *qb5000.Forecaster

	mu sync.Mutex
	// lastSeen tracks the newest observation for Maintain's clock.
	// qb5000:guardedby mu
	lastSeen time.Time
}

// New wraps an existing Forecaster.
func New(f *qb5000.Forecaster) *Server {
	return &Server{f: f}
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/observe", s.handleObserve)
	mux.HandleFunc("/maintain", s.handleMaintain)
	mux.HandleFunc("/forecast", s.handleForecast)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/templates", s.handleTemplates)
	return mux
}

// Maintain re-clusters and retrains at the newest observed timestamp. The
// daemon's background loop and the /maintain endpoint both route through
// here; cancelling ctx (daemon shutdown, client disconnect) aborts the
// retrain at the next worker-pool boundary.
func (s *Server) Maintain(ctx context.Context) error {
	s.mu.Lock()
	now := s.lastSeen
	s.mu.Unlock()
	if now.IsZero() {
		return ErrNoObservations
	}
	return s.f.MaintainContext(ctx, now)
}

// ObserveResult reports one /observe call's outcome.
type ObserveResult struct {
	Ingested int64 `json:"ingested"`
	Rejected int64 `json:"rejected"`
}

// observeChunk bounds how many trace entries accumulate before the server
// flushes them through ObserveMany: large enough that parsing amortizes the
// per-stripe lock acquisitions, small enough to bound memory on unbounded
// request bodies.
const observeChunk = 1024

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var res ObserveResult
	var maxAt time.Time
	batch := make([]qb5000.Observation, 0, observeChunk)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		out := s.f.ObserveMany(batch)
		res.Ingested += out.Ingested
		res.Rejected += out.Rejected
		batch = batch[:0]
	}
	err := tracefile.Read(r.Body, func(e tracefile.Entry) error {
		batch = append(batch, qb5000.Observation{SQL: e.SQL, At: e.At, Count: e.Count})
		if e.At.After(maxAt) {
			maxAt = e.At
		}
		if len(batch) >= observeChunk {
			flush()
		}
		return nil
	})
	// Entries accumulated before a mid-stream format error still fold, the
	// same as the entry-at-a-time path always behaved.
	flush()
	s.mu.Lock()
	if maxAt.After(s.lastSeen) {
		s.lastSeen = maxAt
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleMaintain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if err := s.Maintain(r.Context()); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrNoObservations) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, s.f.Stats())
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	horizon, err := time.ParseDuration(r.URL.Query().Get("horizon"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad horizon: %v", err), http.StatusBadRequest)
		return
	}
	preds, err := s.f.Forecast(horizon)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, preds)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.f.Stats())
}

func (s *Server) handleTemplates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.f.Templates())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing more to do.
		return
	}
}
