// Package server exposes a Forecaster over HTTP — the paper's "external
// controller" deployment (§3): the target DBMS (or a log shipper) forwards
// executed queries to the framework, which runs on separate hardware, and
// the planning module polls it for forecasts.
//
// Endpoints:
//
//	POST /observe    trace lines (timestamp<TAB>[count<TAB>]SQL, see
//	                 internal/tracefile); returns counts ingested/rejected
//	POST /maintain   force a re-cluster + retrain at the latest observed time
//	GET  /forecast   ?horizon=1h → JSON cluster forecasts
//	GET  /stats      JSON reduction statistics
//	GET  /templates  JSON template catalog
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"encoding/json"

	"qb5000"
	"qb5000/internal/admission"
	"qb5000/internal/tracefile"
)

// ErrNoObservations is returned by Maintain before any query has been
// observed (there is no clock to maintain against yet).
var ErrNoObservations = errors.New("server: no observations yet")

// DefaultMaxBodyBytes bounds an /observe request body when Config leaves
// MaxBodyBytes zero: large enough for any realistic trace shipment, finite
// so a runaway client cannot stream forever.
const DefaultMaxBodyBytes int64 = 1 << 30

// Config tunes the serving-tier backpressure (DESIGN.md §9). The zero value
// admits everything, bounding only the request body.
type Config struct {
	// MaxInflight caps concurrently admitted /observe and /forecast
	// requests, each endpoint on its own gate (0 = unlimited).
	MaxInflight int64
	// ObserveRate smooths sustained /observe admissions to this many
	// requests per second via a token bucket (0 = unlimited).
	ObserveRate float64
	// MaxBodyBytes caps one /observe request body (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
}

// Server wraps a Forecaster with HTTP handlers. The Forecaster is itself
// safe for concurrent use (ingest goes to the sharded catalog's stripe
// locks, maintenance publishes copy-on-write epochs), so the handlers call
// it directly; the server only guards its own lastSeen clock. The two
// admission gates shed overload before it reaches the catalog: a rejected
// request costs one atomic counter bump, never a parse.
type Server struct {
	f *qb5000.Forecaster

	observeGate  *admission.Gate
	forecastGate *admission.Gate
	maxBody      int64

	mu sync.Mutex
	// lastSeen tracks the newest observation for Maintain's clock.
	// qb5000:guardedby mu
	lastSeen time.Time
}

// New wraps an existing Forecaster with unlimited admission.
func New(f *qb5000.Forecaster) *Server {
	return NewWithConfig(f, Config{})
}

// NewWithConfig wraps a Forecaster with the given backpressure limits.
func NewWithConfig(f *qb5000.Forecaster, c Config) *Server {
	maxBody := c.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	return &Server{
		f:            f,
		observeGate:  admission.New(admission.Options{MaxInflight: c.MaxInflight, Rate: c.ObserveRate}),
		forecastGate: admission.New(admission.Options{MaxInflight: c.MaxInflight}),
		maxBody:      maxBody,
	}
}

// shed answers a rejected request: 429 with a Retry-After hint sized to the
// gate's refill, so well-behaved clients back off instead of hammering.
func (s *Server) shed(w http.ResponseWriter, g *admission.Gate, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(g.RetryAfterSeconds()))
	http.Error(w, err.Error(), http.StatusTooManyRequests)
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/observe", s.handleObserve)
	mux.HandleFunc("/maintain", s.handleMaintain)
	mux.HandleFunc("/forecast", s.handleForecast)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/templates", s.handleTemplates)
	return mux
}

// Maintain re-clusters and retrains at the newest observed timestamp. The
// daemon's background loop and the /maintain endpoint both route through
// here; cancelling ctx (daemon shutdown, client disconnect) aborts the
// retrain at the next worker-pool boundary.
func (s *Server) Maintain(ctx context.Context) error {
	s.mu.Lock()
	now := s.lastSeen
	s.mu.Unlock()
	if now.IsZero() {
		return ErrNoObservations
	}
	return s.f.MaintainContext(ctx, now)
}

// ObserveResult reports one /observe call's outcome.
type ObserveResult struct {
	Ingested int64 `json:"ingested"`
	Rejected int64 `json:"rejected"`
}

// observeChunk bounds how many trace entries accumulate before the server
// flushes them through ObserveMany: large enough that parsing amortizes the
// per-stripe lock acquisitions, small enough to bound memory on unbounded
// request bodies.
const observeChunk = 1024

// readErrRecorder remembers the last non-EOF error the underlying reader
// produced. When MaxBytesReader cuts a body off mid-line, the trace scanner
// reports the truncated line as a parse error and the limit error would be
// lost; the recorder keeps it so the handler can answer 413 instead of 400.
type readErrRecorder struct {
	r   io.Reader
	err error
}

func (rec *readErrRecorder) Read(p []byte) (int, error) {
	n, err := rec.r.Read(p)
	if err != nil && err != io.EOF {
		rec.err = err
	}
	return n, err
}

// handleObserve streams trace lines into the catalog. Admission first: a
// shed request is answered before a single body byte is read or parsed.
//
// qb5000:serving
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if err := s.observeGate.TryAcquire(1); err != nil {
		s.shed(w, s.observeGate, err)
		return
	}
	defer s.observeGate.Release(1)
	body := &readErrRecorder{r: http.MaxBytesReader(w, r.Body, s.maxBody)}
	var res ObserveResult
	var maxAt time.Time
	batch := make([]qb5000.Observation, 0, observeChunk)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		out := s.f.ObserveMany(batch)
		res.Ingested += out.Ingested
		res.Rejected += out.Rejected
		batch = batch[:0]
	}
	err := tracefile.Read(body, func(e tracefile.Entry) error {
		batch = append(batch, qb5000.Observation{SQL: e.SQL, At: e.At, Count: e.Count})
		if e.At.After(maxAt) {
			maxAt = e.At
		}
		if len(batch) >= observeChunk {
			flush()
		}
		return nil
	})
	// Entries accumulated before a mid-stream format error still fold, the
	// same as the entry-at-a-time path always behaved.
	flush()
	s.mu.Lock()
	if maxAt.After(s.lastSeen) {
		s.lastSeen = maxAt
	}
	s.mu.Unlock()
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) || errors.As(body.err, &tooLarge) {
			http.Error(w, tooLarge.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleMaintain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if err := s.Maintain(r.Context()); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrNoObservations) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, s.f.Stats())
}

// handleForecast serves predictions from the published epoch; admission
// keeps a poll storm from starving /observe of handler goroutines.
//
// qb5000:serving
func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if aerr := s.forecastGate.TryAcquire(1); aerr != nil {
		s.shed(w, s.forecastGate, aerr)
		return
	}
	defer s.forecastGate.Release(1)
	horizon, err := time.ParseDuration(r.URL.Query().Get("horizon"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad horizon: %v", err), http.StatusBadRequest)
		return
	}
	preds, err := s.f.Forecast(horizon)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, preds)
}

// AdmissionStats reports both gates' counters in the /stats payload.
type AdmissionStats struct {
	Observe  admission.Stats `json:"observe"`
	Forecast admission.Stats `json:"forecast"`
}

// StatsResponse is the /stats payload: the catalog's reduction statistics
// (embedded, so existing clients keep their field names) plus the admission
// counters.
type StatsResponse struct {
	qb5000.Stats
	Admission AdmissionStats `json:"admission"`
}

// qb5000:serving
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, StatsResponse{
		Stats: s.f.Stats(),
		Admission: AdmissionStats{
			Observe:  s.observeGate.Stats(),
			Forecast: s.forecastGate.Stats(),
		},
	})
}

// qb5000:serving
func (s *Server) handleTemplates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.f.Templates())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing more to do.
		return
	}
}
