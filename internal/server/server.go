// Package server exposes a Forecaster over HTTP — the paper's "external
// controller" deployment (§3): the target DBMS (or a log shipper) forwards
// executed queries to the framework, which runs on separate hardware, and
// the planning module polls it for forecasts.
//
// Endpoints:
//
//	POST /observe    trace lines (timestamp<TAB>[count<TAB>]SQL, see
//	                 internal/tracefile); returns counts ingested/rejected
//	POST /maintain   force a re-cluster + retrain at the latest observed time
//	GET  /forecast   ?horizon=1h → JSON cluster forecasts
//	GET  /stats      JSON reduction statistics
//	GET  /templates  JSON template catalog
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"qb5000"
	"qb5000/internal/tracefile"
)

// Server wraps a Forecaster with HTTP handlers. The Forecaster itself is
// safe for concurrent Observe calls; maintenance and forecasting are
// serialized with a mutex here because they rebuild shared model state.
type Server struct {
	mu sync.Mutex
	f  *qb5000.Forecaster
	// lastSeen tracks the newest observation for Maintain's clock.
	lastSeen time.Time
}

// New wraps an existing Forecaster.
func New(f *qb5000.Forecaster) *Server {
	return &Server{f: f}
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/observe", s.handleObserve)
	mux.HandleFunc("/maintain", s.handleMaintain)
	mux.HandleFunc("/forecast", s.handleForecast)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/templates", s.handleTemplates)
	return mux
}

// ObserveResult reports one /observe call's outcome.
type ObserveResult struct {
	Ingested int64 `json:"ingested"`
	Rejected int64 `json:"rejected"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var res ObserveResult
	err := tracefile.Read(r.Body, func(e tracefile.Entry) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.f.ObserveBatch(e.SQL, e.At, e.Count); err != nil {
			res.Rejected += e.Count
			return nil // keep ingesting; parse failures are per-query
		}
		res.Ingested += e.Count
		if e.At.After(s.lastSeen) {
			s.lastSeen = e.At
		}
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleMaintain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.lastSeen
	if now.IsZero() {
		http.Error(w, "no observations yet", http.StatusConflict)
		return
	}
	if err := s.f.Maintain(now); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, s.f.Stats())
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	horizon, err := time.ParseDuration(r.URL.Query().Get("horizon"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad horizon: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	preds, err := s.f.Forecast(horizon)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, preds)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	st := s.f.Stats()
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleTemplates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	ts := s.f.Templates()
	s.mu.Unlock()
	writeJSON(w, ts)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing more to do.
		return
	}
}
