package qb5000

import (
	"fmt"
	"testing"
	"time"
)

// TestObserveHitPathAllocs is the allocation gate for the fingerprint-cache
// fast path: an Observe whose raw SQL is already cached must not allocate.
// The budget is ≤1 alloc/op only to absorb one-off runtime effects
// (AllocsPerRun rounds up); the steady state is zero. Guarded by CI's test
// job — a regression here means the zero-alloc observe path grew an
// allocation somewhere between Observe and the stripe fold.
func TestObserveHitPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	f := New(Config{Seed: 1, FingerprintCacheSize: 64})
	// No literals, so there is no parameter vector and the reservoir stays
	// untouched; a fixed timestamp keeps History.Record on one bucket.
	const sql = "SELECT a, b FROM t"
	at := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := f.Observe(sql, at); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := f.ObserveBatch(sql, at, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("cache-hit Observe allocated %.1f allocs/op, want ≤1", allocs)
	}
	if hits := f.Stats().CacheHits; hits == 0 {
		t.Fatal("expected cache hits, got none — the test did not exercise the fast path")
	}
}

// TestObserveMissPathAllocs bounds the cache-enabled miss path. The miss
// still lexes into pooled token scratch and parses, so the remaining
// allocations are AST nodes, the rendered parameter vector, and the cache
// entry; the fixed budget catches accidental regressions (e.g. the lexer
// losing its pooled buffer or keyword interning).
func TestObserveMissPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	f := New(Config{Seed: 1, FingerprintCacheSize: 8})
	at := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	// Distinct raw text each run (far more than 8 cache entries) so every
	// Observe misses; pre-rendered so Sprintf is outside the measured func.
	queries := make([]string, 4096)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT a, b FROM t WHERE x = %d AND y = 2", i)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if err := f.ObserveBatch(queries[i%len(queries)], at, 1); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Measured ~45 allocs/op (AST + params + cache entry); 60 leaves slack
	// for runtime variation without masking a real regression.
	if allocs > 60 {
		t.Errorf("cache-miss Observe allocated %.1f allocs/op, want ≤60", allocs)
	}
}
