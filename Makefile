GO ?= go

.PHONY: all build test test-short test-faults cover bench bench-ingest bench-gate bench-baseline race lint ci experiments experiments-quick vet vet-graph vet-lockgraph fmt clean fuzz-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The durability suite (mirrors the CI `faults` job): the failpoint and fsx
# unit tests, the crash matrix (a fault injected at every registered
# failpoint during save-under-concurrent-ingest must leave the previous
# snapshot byte-identical and loadable), and the snapshot corruption table.
# -count=1 defeats the test cache: fault schedules are process-global state.
test-faults:
	$(GO) test -count=1 ./internal/failpoint/ ./internal/fsx/
	$(GO) test -count=1 -run 'TestCrashMatrixSaveUnderIngest|TestSaveFileLoadFileRoundTrip|TestLoadRejectsCorruptSnapshots' .

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The observe hot-path benchmark selection. bench-ingest, bench-gate, and
# bench-baseline all select with this exact regex so the gate always compares
# like against like: a baseline refreshed here is guaranteed to cover the same
# benchmarks the gate re-runs.
BENCH_RE ?= BenchmarkObserve(Parallel|CacheHit|CacheMiss)$$

# Measure sharded-ingest scaling: ObserveMany throughput at 1, 4, and
# GOMAXPROCS goroutines against the striped catalog, plus the
# fingerprint-cache hit and miss paths.
bench-ingest:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem .

# The CI perf-regression gate: re-run the observe benchmarks several times
# and compare their geomean ns/op against the checked-in baseline with the
# stdlib-only comparator (fails on >15% slowdown). BENCH_COUNT trades gate
# runtime against noise immunity.
BENCH_COUNT ?= 6
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -count $(BENCH_COUNT) . > bench_new.txt || { cat bench_new.txt; exit 1; }
	$(GO) run ./cmd/benchgate -baseline bench_baseline.txt -new bench_new.txt -filter '^BenchmarkObserve' -report bench_report.txt

# Refresh the checked-in baseline (run on the reference machine after an
# intentional perf change, then commit bench_baseline.txt).
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -count $(BENCH_COUNT) . > bench_baseline.txt
	@echo "wrote bench_baseline.txt"

# Run the full suite under the race detector (mirrors the CI `race` job).
race:
	$(GO) test -race ./...

# Mirrors the CI `lint` job. staticcheck runs when installed; install it
# with: go install honnef.co/go/tools/cmd/staticcheck@latest
lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	$(GO) vet ./...
	$(GO) run ./cmd/qb5000vet -baseline .qb5000vet-baseline.json ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# 30-second coverage-guided fuzz of the SQL parser (mirrors the CI smoke).
fuzz-smoke:
	$(GO) test ./internal/sqlparse/ -run '^$$' -fuzz FuzzParse -fuzztime 30s

# Full local equivalent of the CI pipeline: lint, build, test, race, and a
# one-iteration benchmark smoke.
ci: lint build test race
	$(GO) test -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/qb5000bench -exp table3

# Regenerate every table and figure from the paper at full fidelity.
experiments:
	$(GO) run ./cmd/qb5000bench -exp all

experiments-quick:
	$(GO) run ./cmd/qb5000bench -exp all -quick

vet:
	$(GO) vet ./...

# Dump the interprocedural call graph qb5000vet analyzes; renders to SVG
# when graphviz is installed.
vet-graph:
	$(GO) run ./cmd/qb5000vet -graph ./... > callgraph.dot
	@if command -v dot >/dev/null 2>&1; then \
		dot -Tsvg callgraph.dot -o callgraph.svg && echo "wrote callgraph.svg"; \
	else \
		echo "wrote callgraph.dot (install graphviz to render)"; \
	fi

# Dump the lock-acquisition order graph the lockorder analyzer assembles:
# one node per lock class, dashed declared edges, dotted via-call edges,
# red edges on a cycle.
vet-lockgraph:
	$(GO) run ./cmd/qb5000vet -lockgraph ./... > lockgraph.dot
	@if command -v dot >/dev/null 2>&1; then \
		dot -Tsvg lockgraph.dot -o lockgraph.svg && echo "wrote lockgraph.svg"; \
	else \
		echo "wrote lockgraph.dot (install graphviz to render)"; \
	fi

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
