GO ?= go

.PHONY: all build test test-short cover bench experiments experiments-quick vet fmt clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure from the paper at full fidelity.
experiments:
	$(GO) run ./cmd/qb5000bench -exp all

experiments-quick:
	$(GO) run ./cmd/qb5000bench -exp all -quick

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
