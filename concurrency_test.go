package qb5000

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qb5000/internal/failpoint"
	"qb5000/internal/leakcheck"
	"qb5000/internal/workload"
)

// replayForecaster builds a forecaster over an 8-day BusTracker slice and
// trains it, returning the forecaster and the end of the replay window.
func replayForecaster(t *testing.T, cfg Config) (*Forecaster, time.Time) {
	t.Helper()
	f := New(cfg)
	w := workload.BusTracker(3)
	to := w.Start.Add(8 * 24 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Maintain(to); err != nil {
		t.Fatal(err)
	}
	return f, to
}

// TestForecastDeterminismAcrossParallelism pins the tentpole guarantee: the
// parallel retrain/cluster pipeline produces bit-identical forecasts to the
// sequential one, because per-model seeds derive from Config.Seed rather
// than scheduling order and the clusterer applies pool results in a fixed
// order.
func TestForecastDeterminismAcrossParallelism(t *testing.T) {
	horizons := []time.Duration{time.Hour, 2 * time.Hour, 3 * time.Hour}
	base := Config{
		Model:    "ENSEMBLE",
		Horizons: horizons,
		Seed:     3,
		Epochs:   4,
	}

	seq := base
	seq.Parallelism = 1
	par := base
	par.Parallelism = 8

	fSeq, _ := replayForecaster(t, seq)
	fPar, _ := replayForecaster(t, par)

	for _, h := range horizons {
		a, err := fSeq.Forecast(h)
		if err != nil {
			t.Fatalf("sequential forecast %v: %v", h, err)
		}
		b, err := fPar.Forecast(h)
		if err != nil {
			t.Fatalf("parallel forecast %v: %v", h, err)
		}
		if len(a) != len(b) {
			t.Fatalf("horizon %v: %d vs %d clusters", h, len(a), len(b))
		}
		for i := range a {
			if a[i].ClusterID != b[i].ClusterID {
				t.Fatalf("horizon %v cluster %d: IDs %d vs %d", h, i, a[i].ClusterID, b[i].ClusterID)
			}
			if a[i].PerTemplateRate != b[i].PerTemplateRate || a[i].TotalRate != b[i].TotalRate {
				t.Fatalf("horizon %v cluster %d: sequential (%v, %v) != parallel (%v, %v)",
					h, i, a[i].PerTemplateRate, a[i].TotalRate, b[i].PerTemplateRate, b[i].TotalRate)
			}
		}
	}
}

// TestConcurrentMaintainAndForecast exercises the Forecaster's concurrency
// contract under the race detector: maintenance rebuilds model state while
// forecasts, stats, and observations run from other goroutines.
func TestConcurrentMaintainAndForecast(t *testing.T) {
	f, to := replayForecaster(t, Config{
		Model:       "LR",
		Horizons:    []time.Duration{time.Hour},
		Seed:        9,
		Parallelism: 4,
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := f.Forecast(time.Hour); err != nil {
					t.Errorf("forecast: %v", err)
					return
				}
				f.Stats()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		at := to
		for i := 0; i < 50; i++ {
			at = at.Add(time.Minute)
			if err := f.ObserveBatch("SELECT a FROM t WHERE x = 1", at, 2); err != nil {
				t.Errorf("observe: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if err := f.Maintain(to.Add(time.Duration(i+1) * time.Minute)); err != nil {
			t.Fatalf("maintain: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedIngestStress is the tentpole's race gate: P ingest goroutines
// hammer ObserveMany against the striped catalog while one goroutine runs
// Tick in a loop (epoch republication) and readers pull Forecast, Stats,
// and Templates continuously. Run under -race in CI. The query accounting
// must come out exact — stripe merging may not lose or double-count — and
// the whole storm may not leak a goroutine. The fingerprint cache is
// enabled and deliberately small: each ingester's query pool repeats every
// batch (hits) while distinct texts cycle through (clock evictions), and
// the Maintain loop's template eviction sweeps the cache concurrently.
func TestShardedIngestStress(t *testing.T) {
	leakcheck.Check(t, func() {
		f, to := replayForecaster(t, Config{
			Model:       "LR",
			Horizons:    []time.Duration{time.Hour},
			Seed:        11,
			Parallelism: 2,
			// Shards: 0 → GOMAXPROCS stripes, the contended default.
			FingerprintCacheSize: 128,
		})
		baseline := f.Stats().TotalQueries

		ingesters := runtime.GOMAXPROCS(0)
		if ingesters < 2 {
			ingesters = 2
		}
		const batches, perBatch = 20, 32
		var ingested atomic.Int64
		var loops, ing sync.WaitGroup
		stop := make(chan struct{})

		// Readers: forecasts and stats must never block on ingest or Tick.
		for g := 0; g < 2; g++ {
			loops.Add(1)
			go func() {
				defer loops.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := f.Forecast(time.Hour); err != nil {
						t.Errorf("forecast during storm: %v", err)
						return
					}
					f.Stats()
					f.Templates()
				}
			}()
		}

		// Maintenance: re-cluster and republish epochs mid-storm.
		loops.Add(1)
		go func() {
			defer loops.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := f.Maintain(to.Add(time.Duration(i+1) * time.Minute)); err != nil {
					t.Errorf("maintain during storm: %v", err)
					return
				}
			}
		}()

		// Ingesters: distinct and shared templates, all stripes touched.
		for g := 0; g < ingesters; g++ {
			ing.Add(1)
			go func(g int) {
				defer ing.Done()
				for b := 0; b < batches; b++ {
					obs := make([]Observation, 0, perBatch)
					at := to.Add(time.Duration(b) * time.Minute)
					for i := 0; i < perBatch; i++ {
						obs = append(obs, Observation{
							SQL:   fmt.Sprintf("SELECT v FROM storm%d WHERE k = %d", (g+i)%7, i),
							At:    at,
							Count: int64(1 + i%3),
						})
					}
					res := f.ObserveMany(obs)
					if res.Rejected != 0 {
						t.Errorf("goroutine %d: %d rejected", g, res.Rejected)
						return
					}
					ingested.Add(res.Ingested)
				}
			}(g)
		}

		ing.Wait()
		close(stop)
		loops.Wait()

		if got, want := f.Stats().TotalQueries, baseline+ingested.Add(0); got != want {
			t.Fatalf("TotalQueries = %d, want %d (stripe merge lost/double-counted)", got, want)
		}
		if st := f.Stats(); st.CacheHits == 0 {
			t.Error("storm produced no fingerprint-cache hits; the stress did not exercise the fast path")
		}
		if err := f.Maintain(to.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Forecast(time.Hour); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDeadlockSentinel is the lockorder analyzer's dynamic counterpart: it
// drives the exact lock neighborhood the static analyzer models — fpShard
// RLock→read→RUnlock on cache hits, catalogShard fold locks, the fpCache
// insert/evict path (a deliberately tiny cache keeps clock evictions
// constant), and the Maintain loop that sweeps both layers — and fails with
// a full goroutine dump if the storm wedges instead of finishing. The
// workload runs off the test goroutine so a deadlock cannot take the test
// binary's timeout machinery down with it; all failures inside use Errorf,
// which is safe off-goroutine. Run under -race in CI.
func TestDeadlockSentinel(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		leakcheck.Check(t, func() {
			f, to := replayForecaster(t, Config{
				Model:       "LR",
				Horizons:    []time.Duration{time.Hour},
				Seed:        7,
				Parallelism: 2,
				// Tiny on purpose: every batch both hits and evicts, so the
				// cache's lock traffic interleaves with catalog folds.
				FingerprintCacheSize: 32,
			})
			ingesters := runtime.GOMAXPROCS(0)
			if ingesters < 2 {
				ingesters = 2
			}
			const batches, perBatch = 12, 24
			var loops, ing sync.WaitGroup
			stop := make(chan struct{})

			// Readers cross the forecast/stats/snapshot locks against ingest.
			for g := 0; g < 2; g++ {
				loops.Add(1)
				go func() {
					defer loops.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := f.Forecast(time.Hour); err != nil {
							t.Errorf("forecast during sentinel storm: %v", err)
							return
						}
						f.Stats()
						f.Templates()
					}
				}()
			}

			// Maintenance churns template eviction and the cache sweep, the
			// path that nests cache-shard locks under the maintain lock.
			loops.Add(1)
			go func() {
				defer loops.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := f.Maintain(to.Add(time.Duration(i+1) * time.Minute)); err != nil {
						t.Errorf("maintain during sentinel storm: %v", err)
						return
					}
				}
			}()

			// Ingesters repeat a small pool (cache hits) while distinct texts
			// cycle through (insert + clock eviction churn).
			for g := 0; g < ingesters; g++ {
				ing.Add(1)
				go func(g int) {
					defer ing.Done()
					for b := 0; b < batches; b++ {
						obs := make([]Observation, 0, perBatch)
						at := to.Add(time.Duration(b) * time.Minute)
						for i := 0; i < perBatch; i++ {
							obs = append(obs, Observation{
								SQL:   fmt.Sprintf("SELECT v FROM sentinel%d WHERE k = %d", (g+i)%5, i%40),
								At:    at,
								Count: 1,
							})
						}
						if res := f.ObserveMany(obs); res.Rejected != 0 {
							t.Errorf("goroutine %d: %d rejected", g, res.Rejected)
							return
						}
					}
				}(g)
			}

			ing.Wait()
			close(stop)
			loops.Wait()
		})
	}()

	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("deadlock sentinel tripped: the ingest/maintain/read storm did not finish within 2m; goroutine dump:\n%s", buf[:n])
	}
}

// TestSaveBytesIdenticalAcrossShards pins the catalog determinism contract
// at the public API: Save emits byte-identical snapshots whether ingest ran
// over 1, 2, or 8 stripes — and, since the fingerprint cache is pure derived
// state, whether it was disabled or enabled at any size.
func TestSaveBytesIdenticalAcrossShards(t *testing.T) {
	var ref []byte
	for _, shards := range []int{1, 2, 8} {
		for _, fpcache := range []int{0, 512} {
			f := New(Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 5, Shards: shards, FingerprintCacheSize: fpcache})
			w := workload.BusTracker(5)
			to := w.Start.Add(24 * time.Hour)
			err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
				return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
			})
			if err != nil {
				t.Fatal(err)
			}
			if fpcache > 0 && f.Stats().CacheHits == 0 {
				t.Errorf("shards=%d fpcache=%d: replay produced no cache hits", shards, fpcache)
			}
			var buf bytes.Buffer
			if err := f.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = buf.Bytes()
				continue
			}
			if !bytes.Equal(ref, buf.Bytes()) {
				t.Fatalf("shards=%d fpcache=%d: Save bytes differ from the shards=1 cache-off reference (%d vs %d bytes)", shards, fpcache, buf.Len(), len(ref))
			}
		}
	}
}

// TestMaintainContextCancellation verifies a cancelled context aborts the
// maintenance pass instead of finishing the retrain.
func TestMaintainContextCancellation(t *testing.T) {
	f := New(Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 7, Parallelism: 2})
	w := workload.BusTracker(7)
	to := w.Start.Add(5 * 24 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.MaintainContext(ctx, to); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The aborted pass must not leave half-trained models behind.
	if _, err := f.Forecast(time.Hour); err == nil {
		t.Fatal("expected no trained model after cancelled maintenance")
	}
	// A later uncancelled pass recovers cleanly.
	if err := f.Maintain(to); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Forecast(time.Hour); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrixSaveUnderIngest is the durability gate: with ingest
// goroutines hammering the forecaster, a fault injected at every registered
// failpoint in the atomic-write protocol must abort the save with an error
// that wraps failpoint.ErrInjected, leave the previous snapshot on disk
// byte-identical, litter no temp files, and leave the file loadable. Every
// failpoint fires before its operation, so an aborted save never reaches
// the rename — that invariant is what this matrix pins down.
func TestCrashMatrixSaveUnderIngest(t *testing.T) {
	defer failpoint.Reset()
	leakcheck.Check(t, func() {
		cfg := Config{
			Model:    "LR",
			Horizons: []time.Duration{time.Hour},
			Seed:     9,
		}
		f, to := replayForecaster(t, cfg)

		dir := t.TempDir()
		path := filepath.Join(dir, "forecaster.snap")
		if err := f.SaveFile(path); err != nil {
			t.Fatalf("golden save: %v", err)
		}
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		sites := failpoint.Registered()
		if len(sites) == 0 {
			t.Fatal("no failpoints registered; fsx should have registered its protocol sites")
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				at := to
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					at = at.Add(time.Second)
					sql := fmt.Sprintf("SELECT c%d FROM crash_matrix WHERE k = %d", g, i%17)
					if err := f.ObserveBatch(sql, at, 1); err != nil {
						t.Errorf("ingester %d: %v", g, err)
						return
					}
				}
			}(g)
		}

		for _, site := range sites {
			if err := failpoint.SetNth(site, 1); err != nil {
				t.Fatalf("arming %s: %v", site, err)
			}
			err := f.SaveFile(path)
			if cerr := failpoint.Clear(site); cerr != nil {
				t.Fatalf("clearing %s: %v", site, cerr)
			}
			if err == nil {
				t.Fatalf("site %s: save succeeded with a fault armed", site)
			}
			if !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("site %s: error %v does not wrap ErrInjected", site, err)
			}
			onDisk, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("site %s: previous snapshot unreadable: %v", site, rerr)
			}
			if !bytes.Equal(onDisk, golden) {
				t.Fatalf("site %s: aborted save mutated the snapshot (%d vs %d bytes)", site, len(onDisk), len(golden))
			}
			entries, derr := os.ReadDir(dir)
			if derr != nil {
				t.Fatal(derr)
			}
			if len(entries) != 1 {
				names := make([]string, 0, len(entries))
				for _, e := range entries {
					names = append(names, e.Name())
				}
				t.Fatalf("site %s: temp litter after aborted save: %v", site, names)
			}
			if _, lerr := LoadFile(cfg, path); lerr != nil {
				t.Fatalf("site %s: snapshot unloadable after aborted save: %v", site, lerr)
			}
		}

		close(stop)
		wg.Wait()

		// With all faults cleared, the protocol commits cleanly over the
		// post-ingest state and the result round-trips.
		if err := f.SaveFile(path); err != nil {
			t.Fatalf("final save: %v", err)
		}
		g2, err := LoadFile(cfg, path)
		if err != nil {
			t.Fatalf("final load: %v", err)
		}
		if got, want := g2.Stats().TotalQueries, f.Stats().TotalQueries; got != want {
			t.Fatalf("reloaded TotalQueries = %d, want %d", got, want)
		}
	})
}
