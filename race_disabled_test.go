//go:build !race

package qb5000

// raceEnabled reports whether the race detector instrumented this build.
const raceEnabled = false
